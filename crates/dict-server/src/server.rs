//! The TCP front-end: thread-per-connection framing on `std::net` around an
//! **epoch group-commit pipeline**.
//!
//! # Architecture
//!
//! ```text
//! acceptor threads ──▶ per-connection reader ──▶ bounded per-shard queues
//!   (one listener,        (parse frame,             (seq-stamped tickets,
//!    N acceptors)          route by shard,           shed when full)
//!                          shed/refuse typed)              │
//!                                                          ▼ epoch boundary
//! per-connection writer ◀── response slots ◀── engine thread (drain all
//!   (emits responses in      (one per request)    queues, merge by seq,
//!    arrival order)                                segment walk, apply_batch)
//! ```
//!
//! Requests accumulate in bounded per-shard queues for at most
//! `epoch_micros` microseconds or `epoch_ops` operations, whichever first.
//! The engine then drains *every* queue, merges the tickets by their global
//! arrival sequence number, and walks them in that one order: point writes
//! accumulate into a batch (plus a this-epoch overlay so a pipelined `GET`
//! after a `PUT` on one connection observes its own write), point reads
//! answer from the overlay or from one batched [`ShardedDict::multi_get`]
//! against the pre-batch state, and order-sensitive operations (`SUCC`,
//! `PRED`, `LEN`, `FLUSH`) are *barriers*: the pending batch commits
//! through [`ShardedDict::multi_apply`] first, then the barrier runs on the
//! committed state.
//!
//! ## Why this preserves both correctness and history independence
//!
//! *Correctness*: no response is issued until the engine fills its slot, so
//! every operation in an epoch is concurrent in real time and any single
//! serial order is a valid linearization; the engine's order is global
//! arrival (seq) order, which also embeds each connection's program order,
//! so pipelined streams read their own writes (the oracle battery in
//! `tests/server_protocol.rs` pins this against `BTreeMap`).
//!
//! *History independence*: the engine only ever touches the dictionary
//! through `multi_get`/`multi_apply`/`bulk_load` — the batch engine whose
//! layout is invariant under batch partitioning (PR 5's pinned property).
//! Timing decides only *where epoch boundaries fall*, i.e. how the one
//! arrival-ordered stream is partitioned into batches — exactly the degree
//! of freedom the layout is invariant under — so scheduling, client count,
//! and epoch knobs cannot leak into the at-rest bytes. The determinism
//! battery (`tests/server_determinism.rs`) verifies the flushed image after
//! a concurrent multi-client run byte-for-byte against a single-threaded
//! rebuild of the same contents.
//!
//! *Degradation*: a quarantined shard refuses typed — reads and writes
//! that route to it answer `DEGRADED`, navigation that it could own goes
//! through [`ShardedDict::try_successor`] and
//! [`ShardedDict::try_predecessor`], and `FLUSH`
//! refuses rather than persist partial contents. Never a silent wrong
//! answer.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use anti_persistence::dict::{DictBuilder, DictConfig, DynDict, PersistentDict, ServerConfig};
use hi_common::batch::BatchOp;
use hi_common::sync::locked;
use hi_common::traits::Dictionary;
use shard::{ShardError, ShardedDict};

use crate::clock;
use crate::protocol::{
    decode_request, encode_response, envelope_token, write_frame, Request, Response,
};

/// The concrete dictionary this front-end serves.
pub type ServedDict = ShardedDict<DynDict<u64, u64>>;

/// How long a blocked socket read waits before re-checking the shutdown
/// flag. Latency of *shutdown*, not of requests — reads that have data
/// return immediately.
const READ_POLL: Duration = Duration::from_millis(25);

/// Engine idle poll when no request is queued (shutdown-latency bound).
const IDLE_POLL: Duration = Duration::from_millis(5);

/// Hard bound on distinct HELLO-bound clients with live dedup windows.
/// Beyond it the least-recently-used client's window is evicted whole —
/// a count-based bound, so the registry can never grow with client churn.
const MAX_DEDUP_CLIENTS: usize = 1024;

/// Everything the server hands to [`Server::spawn`] besides the address.
pub struct ServerOptions {
    /// Dictionary + epoch/backpressure configuration (validated up front;
    /// see `DictConfig::validate`).
    pub config: DictConfig,
    /// When present, `FLUSH` canonicalizes the served contents into this
    /// store; when `None`, `FLUSH` answers `UNAVAILABLE`. Passing the
    /// dictionary in (rather than a path) lets crash batteries arm
    /// `block_store::WriteFuse` / fault plans before the server starts.
    pub persist: Option<PersistentDict>,
}

/// One in-flight request's response cell: filled exactly once by whichever
/// stage answers (reader shed, inline admin, or the engine), awaited by the
/// connection's writer in arrival order.
struct Slot {
    resp: Mutex<Option<Response>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            resp: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, resp: Response) {
        *locked(&self.resp) = Some(resp);
        self.ready.notify_all();
    }

    fn wait(&self) -> Response {
        let mut guard = locked(&self.resp);
        loop {
            if let Some(resp) = guard.take() {
                return resp;
            }
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A queued operation: its global arrival sequence number, the request,
/// the response slot its connection's writer is waiting on, and — for
/// mutating requests from a HELLO-bound client — the `(client, token)`
/// idempotency identity the engine dedups on.
struct Ticket {
    seq: u64,
    req: Request,
    slot: Arc<Slot>,
    idem: Option<Idem>,
}

/// One bounded shard queue (the last queue holds the order-sensitive
/// operations that need the global view).
struct Queue {
    ops: VecDeque<Ticket>,
    /// Set by the engine's final drain: no ticket enqueued after this can
    /// ever be drained, so enqueue refuses instead.
    closed: bool,
}

/// Epoch pacing state guarded by one mutex with a condvar: how many
/// operations are queued across all queues and when the open epoch began.
struct Pacing {
    queued: usize,
    epoch_open_micros: u64,
}

struct Shared {
    dict: RwLock<ServedDict>,
    /// `None` once [`Server::into_persist`] has taken it back (or when the
    /// server was started without persistence) — `FLUSH` answers
    /// `UNAVAILABLE` then.
    persist: Mutex<Option<PersistentDict>>,
    /// `shard_count + 1` queues: one per shard, plus the barrier queue.
    queues: Vec<Mutex<Queue>>,
    seq: AtomicU64,
    pacing: Mutex<Pacing>,
    wake: Condvar,
    shutdown: AtomicBool,
    cfg: ServerConfig,
}

fn degraded(err: ShardError) -> Response {
    let ShardError::Degraded { shard, reason } = err;
    Response::Degraded {
        shard: shard as u64,
        reason,
    }
}

/// `RwLock` variants of [`hi_common::sync::locked`], same policy: shard
/// panics are already contained (the quarantine ledger marks the shard
/// down before the panic unwinds out of `multi_apply`), so a poisoned
/// service lock carries no torn state worth cascading over.
fn read_locked<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_locked<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    /// Queue index for a data operation on `key`.
    fn shard_queue(&self, key: u64) -> usize {
        read_locked(&self.dict).shard_of(&key)
    }

    /// Queue index for order-sensitive (barrier) operations.
    fn barrier_queue(&self) -> usize {
        self.queues.len() - 1
    }

    /// Stamps, bounds-checks and enqueues one operation; fills the slot
    /// immediately with the typed shed/refusal response when the queue is
    /// full or closed.
    fn enqueue(&self, queue: usize, req: Request, slot: &Arc<Slot>, idem: Option<Idem>) {
        let mut q = locked(&self.queues[queue]);
        if q.closed {
            slot.fill(Response::Unavailable("server is shutting down".into()));
            return;
        }
        if q.ops.len() >= self.cfg.queue_bound {
            slot.fill(Response::Overloaded);
            return;
        }
        // The global sequence is drawn under the queue lock, so each
        // queue's tickets are seq-sorted and the engine's merge by seq
        // reconstructs one total arrival order.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        q.ops.push_back(Ticket {
            seq,
            req,
            slot: Arc::clone(slot),
            idem,
        });
        drop(q);
        let mut pacing = locked(&self.pacing);
        if pacing.queued == 0 {
            pacing.epoch_open_micros = clock::now_micros();
        }
        pacing.queued += 1;
        // Wake the engine when an epoch opens (so its deadline timer
        // starts) and when the op budget fills (so it closes early).
        let wake = pacing.queued == 1 || pacing.queued >= self.cfg.epoch_ops;
        drop(pacing);
        if wake {
            self.wake.notify_one();
        }
    }
}

/// A handle to a running server: its bound address and the threads behind
/// it. [`Server::shutdown`] (also run on drop) drains queued work, answers
/// every in-flight request, and joins every thread.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    engine: Option<JoinHandle<()>>,
    acceptors: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    stopped: bool,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), validates the
    /// configuration, builds the sharded dictionary, and spawns the accept
    /// loop and the epoch engine.
    pub fn spawn(addr: impl ToSocketAddrs, opts: ServerOptions) -> io::Result<Server> {
        opts.config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let cfg = opts.config.server;
        let dict: ServedDict = DictBuilder::from_config(opts.config)
            .try_build_sharded()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let shard_count = dict.shard_count();
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            dict: RwLock::new(dict),
            persist: Mutex::new(opts.persist),
            queues: (0..=shard_count)
                .map(|_| {
                    Mutex::new(Queue {
                        ops: VecDeque::new(),
                        closed: false,
                    })
                })
                .collect(),
            seq: AtomicU64::new(0),
            pacing: Mutex::new(Pacing {
                queued: 0,
                epoch_open_micros: 0,
            }),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cfg,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let engine = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || engine_loop(&shared))
        };
        let mut acceptors = Vec::with_capacity(cfg.acceptors);
        for _ in 0..cfg.acceptors {
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            acceptors.push(std::thread::spawn(move || {
                accept_loop(&shared, &listener, &conns)
            }));
        }
        Ok(Server {
            addr: local,
            shared,
            engine: Some(engine),
            acceptors,
            conns,
            stopped: false,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains and answers everything queued, and joins
    /// every thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_one();
        // One nudge connection per acceptor unblocks every accept() call.
        for _ in 0..self.acceptors.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for handle in self.acceptors.drain(..) {
            let _ = handle.join();
        }
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
        let handles: Vec<JoinHandle<()>> = locked(&self.conns).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Takes the persistence layer back out of a stopped server — the
    /// crash batteries reopen the store to assert whole-old/whole-new.
    pub fn into_persist(mut self) -> Option<PersistentDict> {
        self.shutdown();
        locked(&self.shared.persist).take()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Accept loop and per-connection threads
// ---------------------------------------------------------------------------

fn accept_loop(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let _ = stream.set_nodelay(true);
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                // Bounded response buffer: once `inflight_bound` responses
                // are queued for this connection's writer, the *reader*
                // blocks admitting new frames (its TCP window fills and the
                // slow client backpressures itself). The engine fills slots
                // through independent `Arc`s and never touches this channel.
                let (tx, rx) = mpsc::sync_channel::<(u64, Arc<Slot>)>(shared.cfg.inflight_bound);
                let write_timeout = shared.cfg.write_timeout;
                let reader = {
                    let shared = Arc::clone(shared);
                    // A panic in either half is contained to its connection:
                    // the unwind drops `tx`/`rx`, the peer half drains out,
                    // and the engine and every other connection keep serving.
                    std::thread::spawn(move || {
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            connection_reader(&shared, stream, &tx);
                        }));
                    })
                };
                let writer = std::thread::spawn(move || {
                    let _ = catch_unwind(AssertUnwindSafe(|| {
                        connection_writer(write_half, &rx, write_timeout);
                    }));
                });
                let mut guard = locked(conns);
                guard.push(reader);
                guard.push(writer);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (EMFILE, aborted handshake):
                // back off briefly instead of spinning.
                std::thread::sleep(READ_POLL);
            }
        }
    }
}

/// What one attempt to read a full frame observed.
enum Wire {
    Body(Vec<u8>),
    /// Clean close between frames.
    Eof,
    /// The peer vanished with a partial prefix or body on the wire.
    MidFrameCut,
    /// Length prefix of zero or beyond the configured `max_frame`; body
    /// unread.
    Oversized(u32),
    /// The server is shutting down.
    Shutdown,
    /// The idle budget ran out: the peer sent nothing — not even a PING —
    /// for `idle_timeout` worth of read polls. Reap the connection.
    Idle,
    /// Hard socket error.
    Dead,
}

/// Fills `buf` completely, tolerating read timeouts (used to poll the
/// shutdown flag) and preserving partial progress across them. `idle`
/// counts consecutive empty read polls across calls — any received byte
/// resets it, `budget` exhausts it. The reap decision is therefore a
/// *count* of poll intervals, not a wall-clock read: determinism-hygiene
/// keeps clocks out of the reaper the same way it keeps them out of the
/// retry budget.
fn fill_buf(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
    at_boundary: bool,
    idle: &mut usize,
    budget: usize,
) -> Wire {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && at_boundary {
                    Wire::Eof
                } else {
                    Wire::MidFrameCut
                }
            }
            Ok(n) => {
                filled += n;
                *idle = 0;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Wire::Shutdown;
                }
                *idle += 1;
                if *idle >= budget {
                    return Wire::Idle;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Wire::Dead,
        }
    }
    Wire::Body(Vec::new())
}

fn read_wire_frame(
    stream: &mut TcpStream,
    shared: &Shared,
    idle: &mut usize,
    budget: usize,
) -> Wire {
    let mut prefix = [0u8; 4];
    match fill_buf(stream, &mut prefix, shared, true, idle, budget) {
        Wire::Body(_) => {}
        other => return other,
    }
    let len = u32::from_be_bytes(prefix);
    if len == 0 || len as usize > shared.cfg.max_frame {
        return Wire::Oversized(len);
    }
    let mut body = vec![0u8; len as usize];
    match fill_buf(stream, &mut body, shared, false, idle, budget) {
        Wire::Body(_) => Wire::Body(body),
        other => other,
    }
}

fn connection_reader(
    shared: &Arc<Shared>,
    mut stream: TcpStream,
    tx: &SyncSender<(u64, Arc<Slot>)>,
) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    // Idle reaper: a count-based budget of consecutive empty read polls.
    // Any received byte — a PING included — resets it.
    let budget = ((shared.cfg.idle_timeout.as_millis() / READ_POLL.as_millis()).max(1)) as usize;
    let mut idle = 0usize;
    // The client identity bound by HELLO; 0 until then (anonymous — no
    // dedup protection).
    let mut client = 0u64;
    loop {
        let body = match read_wire_frame(&mut stream, shared, &mut idle, budget) {
            Wire::Body(body) => body,
            // A clean close, a mid-frame disconnect, a dead socket, or a
            // reaped idler all end the connection silently — there is no
            // peer left (or entitled) to tell.
            Wire::Eof | Wire::MidFrameCut | Wire::Dead | Wire::Shutdown | Wire::Idle => return,
            Wire::Oversized(len) => {
                // Refuse before reading a single body byte, then close:
                // a hostile prefix cannot make the server stage memory.
                let slot = Slot::new();
                slot.fill(Response::BadRequest(format!(
                    "frame length {len} outside 1..={}",
                    shared.cfg.max_frame
                )));
                let _ = tx.send((0, slot));
                return;
            }
        };
        let (token, req) = match decode_request(&body) {
            Ok(pair) => pair,
            Err(e) => {
                // Echo whatever token prefix arrived so a retrying client
                // can correlate the refusal, then close: after a checksum
                // mismatch the stream offset can no longer be trusted.
                let slot = Slot::new();
                slot.fill(Response::BadRequest(e.0));
                let _ = tx.send((envelope_token(&body), slot));
                return;
            }
        };
        let slot = Slot::new();
        // Mutating requests from a HELLO-bound client with a nonzero token
        // carry an idempotency identity the engine dedups on.
        let idem = match (client, token, &req) {
            (0, _, _) | (_, 0, _) => None,
            (c, t, Request::Put { .. } | Request::Del { .. } | Request::Flush) => Some((c, t)),
            _ => None,
        };
        match req {
            // Data operations ride the epoch pipeline, routed by shard.
            Request::Get { key } | Request::Put { key, .. } | Request::Del { key } => {
                let queue = shared.shard_queue(key);
                shared.enqueue(queue, req, &slot, idem);
            }
            // Order-sensitive operations are barriers in the engine.
            Request::Succ { .. } | Request::Pred { .. } | Request::Len | Request::Flush => {
                shared.enqueue(shared.barrier_queue(), req, &slot, idem);
            }
            // Health management answers inline under a *read* lock: the
            // quarantine ledger is interior-mutable and both transitions
            // take `&self`, so re-admitting a repaired shard never needs
            // exclusive ownership of the service (satellite contract —
            // see ShardedDict::restore_shard).
            Request::Health => {
                let dict = read_locked(&shared.dict);
                let degraded_shards = dict
                    .health()
                    .into_iter()
                    .flatten()
                    .map(|e| {
                        let ShardError::Degraded { shard, reason } = e;
                        (shard as u64, reason)
                    })
                    .collect();
                slot.fill(Response::Health {
                    shards: dict.shard_count() as u64,
                    degraded: degraded_shards,
                });
            }
            Request::Quarantine { shard, reason } => {
                let dict = read_locked(&shared.dict);
                if (shard as usize) < dict.shard_count() {
                    dict.quarantine_shard(shard as usize, reason);
                    slot.fill(Response::Done);
                } else {
                    slot.fill(Response::BadRequest(format!(
                        "shard {shard} out of range ({} shards)",
                        dict.shard_count()
                    )));
                }
            }
            Request::Restore { shard } => {
                let dict = read_locked(&shared.dict);
                if (shard as usize) < dict.shard_count() {
                    dict.restore_shard(shard as usize);
                    slot.fill(Response::Done);
                } else {
                    slot.fill(Response::BadRequest(format!(
                        "shard {shard} out of range ({} shards)",
                        dict.shard_count()
                    )));
                }
            }
            Request::Ping => slot.fill(Response::Done),
            Request::Hello { client: id } => {
                client = id;
                slot.fill(Response::Done);
            }
        }
        if tx.send((token, slot)).is_err() {
            // Writer died (peer stopped reading); no point parsing more.
            return;
        }
    }
}

fn connection_writer(stream: TcpStream, rx: &Receiver<(u64, Arc<Slot>)>, write_timeout: Duration) {
    // A peer that stops draining responses is shed after `write_timeout`
    // (the write errors, the writer exits, the reader's next send fails):
    // slow clients cost themselves the connection, never an engine stall.
    let _ = stream.set_write_timeout(Some(write_timeout));
    let mut out = BufWriter::new(stream);
    while let Ok((token, slot)) = rx.recv() {
        let resp = slot.wait();
        if write_frame(&mut out, &encode_response(token, &resp)).is_err() || out.flush().is_err() {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// The epoch engine
// ---------------------------------------------------------------------------

/// One client's retained responses, keyed by idempotency token, with
/// FIFO token order for window eviction and a logical-use tick for LRU
/// client eviction. Both bounds are counts — no clock is consulted.
struct DedupWindow {
    retained: BTreeMap<u64, Response>,
    order: VecDeque<u64>,
    last_use: u64,
}

/// The engine-owned exactly-once ledger: per HELLO-bound client, the last
/// `dedup_window` successfully-applied mutating tokens and their retained
/// responses. Owned by the engine thread alone (no lock), consulted before
/// a mutating ticket joins a segment and appended to when its write
/// commits healthy.
///
/// Memory bound: at most [`MAX_DEDUP_CLIENTS`] clients × `dedup_window`
/// retained responses, each a small fixed-size variant (`Done` /
/// `Generation`) — both factors are configuration constants, so the ledger
/// cannot grow with traffic, churn, or time.
struct DedupRegistry {
    clients: BTreeMap<u64, DedupWindow>,
    window: usize,
    tick: u64,
}

impl DedupRegistry {
    fn new(window: usize) -> Self {
        Self {
            clients: BTreeMap::new(),
            window,
            tick: 0,
        }
    }

    /// The retained response for `(client, token)`, if the token is still
    /// inside the client's window. Bumps the client's LRU tick.
    fn lookup(&mut self, client: u64, token: u64) -> Option<Response> {
        self.tick += 1;
        let w = self.clients.get_mut(&client)?;
        w.last_use = self.tick;
        w.retained.get(&token).cloned()
    }

    /// Retains `resp` for `(client, token)`, evicting the oldest token
    /// beyond the window and the least-recently-used client beyond
    /// [`MAX_DEDUP_CLIENTS`].
    fn record(&mut self, client: u64, token: u64, resp: Response) {
        self.tick += 1;
        if !self.clients.contains_key(&client) && self.clients.len() >= MAX_DEDUP_CLIENTS {
            let lru = self
                .clients
                .iter()
                .min_by_key(|(_, w)| w.last_use)
                .map(|(id, _)| *id);
            if let Some(id) = lru {
                self.clients.remove(&id);
            }
        }
        let w = self.clients.entry(client).or_insert_with(|| DedupWindow {
            retained: BTreeMap::new(),
            order: VecDeque::new(),
            last_use: 0,
        });
        w.last_use = self.tick;
        if w.retained.insert(token, resp).is_none() {
            w.order.push_back(token);
            while w.order.len() > self.window {
                if let Some(old) = w.order.pop_front() {
                    w.retained.remove(&old);
                }
            }
        }
    }
}

fn engine_loop(shared: &Arc<Shared>) {
    let mut dedup = DedupRegistry::new(shared.cfg.dedup_window);
    loop {
        let shutting = wait_for_epoch(shared);
        let epoch = drain_epoch(shared, shutting);
        if !epoch.is_empty() {
            process_epoch(shared, epoch, &mut dedup);
        }
        if shutting {
            // Final sweep: `closed` is now set under every queue lock, so
            // nothing can slip in after this drain.
            let tail = drain_epoch(shared, true);
            if !tail.is_empty() {
                process_epoch(shared, tail, &mut dedup);
            }
            return;
        }
    }
}

/// Blocks until the open epoch is due (first-op age ≥ window, or op budget
/// reached) or shutdown begins. Returns whether the server is shutting
/// down.
fn wait_for_epoch(shared: &Arc<Shared>) -> bool {
    let mut pacing = locked(&shared.pacing);
    loop {
        let shutting = shared.shutdown.load(Ordering::SeqCst);
        if shutting {
            pacing.queued = 0;
            return true;
        }
        if pacing.queued >= shared.cfg.epoch_ops {
            pacing.queued = 0;
            return false;
        }
        if pacing.queued > 0 {
            let age = clock::now_micros().saturating_sub(pacing.epoch_open_micros);
            if age >= shared.cfg.epoch_micros {
                pacing.queued = 0;
                return false;
            }
            let remaining = Duration::from_micros(shared.cfg.epoch_micros - age);
            pacing = shared
                .wake
                .wait_timeout(pacing, remaining)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        } else {
            pacing = shared
                .wake
                .wait_timeout(pacing, IDLE_POLL)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

/// Drains every queue and merges the tickets into one global
/// arrival-ordered stream. During shutdown the queues are closed under
/// their locks first, so no later enqueue can be stranded unanswered.
fn drain_epoch(shared: &Arc<Shared>, closing: bool) -> Vec<Ticket> {
    let mut epoch: Vec<Ticket> = Vec::new();
    for queue in &shared.queues {
        let mut q = locked(queue);
        if closing {
            q.closed = true;
        }
        epoch.extend(q.ops.drain(..));
    }
    // Each queue was seq-sorted (stamps drawn under the queue lock); the
    // merge re-establishes the one total arrival order.
    epoch.sort_by_key(|t| t.seq);
    epoch
}

/// An idempotency identity: `(client id, token)`.
type Idem = (u64, u64);

/// One epoch's worth of point operations between two barriers: the batch
/// in arrival order plus an overlay so later reads in the same segment
/// observe earlier writes, and the deferred reads that missed the overlay.
#[derive(Default)]
struct Segment {
    overlay: BTreeMap<u64, Option<u64>>,
    /// `(key, slot, idem)` of every write, in arrival order.
    writes: Vec<(u64, Arc<Slot>, Option<Idem>)>,
    batch: Vec<BatchOp<u64, u64>>,
    /// Idempotency identities already writing in this segment — a
    /// duplicate arriving in the *same* epoch (registry not yet updated)
    /// is caught here instead.
    pending: BTreeSet<Idem>,
    /// Same-segment duplicates: `(key, slot)` answered at commit exactly
    /// like their originals (same shard-health check), without a second
    /// application.
    dups: Vec<(u64, Arc<Slot>)>,
    /// Reads that hit the overlay: `(key, observed value, slot)` — answered
    /// only after the batch commits, so a shard that panics mid-apply
    /// degrades them instead of letting them claim an uncommitted write.
    overlay_reads: Vec<(u64, Option<u64>, Arc<Slot>)>,
    /// Reads that missed the overlay, answered from the pre-batch state.
    deferred_reads: Vec<(u64, Arc<Slot>)>,
}

impl Segment {
    fn push_read(&mut self, key: u64, slot: Arc<Slot>) {
        match self.overlay.get(&key) {
            Some(v) => self.overlay_reads.push((key, *v, slot)),
            None => self.deferred_reads.push((key, slot)),
        }
    }

    fn push_write(&mut self, key: u64, value: Option<u64>, slot: Arc<Slot>, idem: Option<Idem>) {
        // A duplicate of a write already in this segment joins as a
        // *waiter*, not a second application — exactly-once holds even
        // when the retry lands in the same epoch as the original.
        if let Some(id) = idem {
            if !self.pending.insert(id) {
                self.dups.push((key, slot));
                return;
            }
        }
        self.overlay.insert(key, value);
        self.batch.push(match value {
            Some(v) => BatchOp::Put(key, v),
            None => BatchOp::Remove(key),
        });
        self.writes.push((key, slot, idem));
    }

    fn is_empty(&self) -> bool {
        self.batch.is_empty()
            && self.overlay_reads.is_empty()
            && self.deferred_reads.is_empty()
            && self.dups.is_empty()
    }

    /// Commits the segment: deferred reads answer from the pre-batch
    /// state, the batch drains through `multi_apply`, and every response
    /// is checked against post-apply shard health so nothing a quarantined
    /// shard owned is reported as a clean answer. Healthy tokened writes
    /// are recorded in the dedup registry — degraded ones are *not*, so a
    /// retry after repair re-attempts instead of replaying the refusal.
    fn commit(&mut self, dict: &mut ServedDict, dedup: &mut DedupRegistry) {
        if self.is_empty() {
            return;
        }
        let keys: Vec<u64> = self.deferred_reads.iter().map(|(k, _)| *k).collect();
        let values = dict.multi_get(&keys);
        let deferred: Vec<(u64, Option<u64>, Arc<Slot>)> = self
            .deferred_reads
            .drain(..)
            .zip(values)
            .map(|((key, slot), value)| (key, value, slot))
            .collect();
        dict.multi_apply(std::mem::take(&mut self.batch));
        for (key, value, slot) in deferred.into_iter().chain(self.overlay_reads.drain(..)) {
            match dict.shard_status(dict.shard_of(&key)) {
                Some(err) => slot.fill(degraded(err)),
                None => slot.fill(match value {
                    Some(v) => Response::Value(v),
                    None => Response::NotFound,
                }),
            }
        }
        for (key, slot, idem) in self.writes.drain(..) {
            match dict.shard_status(dict.shard_of(&key)) {
                Some(err) => slot.fill(degraded(err)),
                None => {
                    if let Some((client, token)) = idem {
                        dedup.record(client, token, Response::Done);
                    }
                    slot.fill(Response::Done);
                }
            }
        }
        for (key, slot) in self.dups.drain(..) {
            match dict.shard_status(dict.shard_of(&key)) {
                Some(err) => slot.fill(degraded(err)),
                None => slot.fill(Response::Done),
            }
        }
        self.pending.clear();
        self.overlay.clear();
    }
}

fn process_epoch(shared: &Arc<Shared>, epoch: Vec<Ticket>, dedup: &mut DedupRegistry) {
    let mut dict = write_locked(&shared.dict);
    let mut segment = Segment::default();
    for ticket in epoch {
        // Exactly-once: a mutating retry whose token is still inside its
        // client's window replays the retained response — the write is
        // not re-applied, so `PUT a; DEL a; retry PUT a` cannot resurrect
        // the key.
        if let Some((client, token)) = ticket.idem {
            if let Some(retained) = dedup.lookup(client, token) {
                ticket.slot.fill(retained);
                continue;
            }
        }
        match ticket.req {
            Request::Get { key } => {
                // A read on a quarantined shard refuses before joining the
                // segment — `multi_get`'s silent omission never becomes a
                // silent NOT_FOUND.
                match dict.shard_status(dict.shard_of(&key)) {
                    Some(err) => ticket.slot.fill(degraded(err)),
                    None => segment.push_read(key, ticket.slot),
                }
            }
            Request::Put { key, value } => match dict.shard_status(dict.shard_of(&key)) {
                Some(err) => ticket.slot.fill(degraded(err)),
                None => segment.push_write(key, Some(value), ticket.slot, ticket.idem),
            },
            Request::Del { key } => match dict.shard_status(dict.shard_of(&key)) {
                Some(err) => ticket.slot.fill(degraded(err)),
                None => segment.push_write(key, None, ticket.slot, ticket.idem),
            },
            barrier => {
                segment.commit(&mut dict, dedup);
                let resp = barrier_response(shared, &mut dict, barrier);
                // FLUSH is the one mutating barrier: retain its success
                // (the committed generation) so a retried FLUSH replays
                // the same generation instead of committing twice.
                if let Some((client, token)) = ticket.idem {
                    if matches!(resp, Response::Generation(_)) {
                        dedup.record(client, token, resp.clone());
                    }
                }
                ticket.slot.fill(resp);
            }
        }
    }
    segment.commit(&mut dict, dedup);
}

fn barrier_response(shared: &Shared, dict: &mut ServedDict, req: Request) -> Response {
    match req {
        Request::Succ { key } => match dict.try_successor(&key) {
            Ok(Some((k, v))) => Response::Entry(k, v),
            Ok(None) => Response::NotFound,
            Err(err) => degraded(err),
        },
        Request::Pred { key } => match dict.try_predecessor(&key) {
            Ok(Some((k, v))) => Response::Entry(k, v),
            Ok(None) => Response::NotFound,
            Err(err) => degraded(err),
        },
        Request::Len => Response::Count(dict.len() as u64),
        Request::Flush => flush_response(shared, dict),
        // Admin and data ops never reach the barrier path (readers answer
        // admin inline and route data ops by shard); refuse defensively
        // instead of panicking inside the engine.
        _ => Response::BadRequest("operation is not a barrier".into()),
    }
}

/// Canonicalizes the served contents into the persistent store. Refuses
/// typed while any shard is quarantined: the quarantined shard's entries
/// are unreadable, and flushing without them would persist a silently
/// partial image.
fn flush_response(shared: &Shared, dict: &ServedDict) -> Response {
    if let Some(err) = dict.health().into_iter().flatten().next() {
        return degraded(err);
    }
    let mut guard = locked(&shared.persist);
    let Some(p) = guard.as_mut() else {
        return Response::Unavailable("no persistent store configured (--persist)".into());
    };
    let contents = dict.to_sorted_vec();
    let seed = p.seed();
    p.bulk_load(contents, seed);
    match p.flush() {
        Ok(generation) => Response::Generation(generation),
        Err(e) => Response::Unavailable(format!("flush failed: {e}")),
    }
}
