//! Cheap operation counters used by the benchmark harnesses.
//!
//! The paper's Figure 2 plots *element moves* per insert, normalized by
//! `N log²N`; Theorem 11 is stated in terms of RAM operations and rebuild
//! counts. Every structure in the workspace therefore carries an
//! [`OpCounters`] value that it bumps as it works. The counters are plain
//! integers; the [`SharedCounters`] wrapper offers interior mutability for
//! the cases where a structure and its auxiliary trees need to report into
//! one ledger. The wrapper is `Send + Sync` (an `Arc<Mutex<_>>` underneath)
//! so whole engines can move onto the sharded service layer's worker
//! threads; each engine still owns its ledger exclusively, so the lock is
//! never contended on the hot path.

use crate::sync::locked;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Running totals of the work a structure has performed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpCounters {
    /// Number of element relocations within the backing array(s). This is the
    /// quantity plotted in the paper's Figure 2.
    pub element_moves: u64,
    /// Number of range (or node) rebuilds triggered.
    pub rebuilds: u64,
    /// Total number of slots rewritten by rebuilds, a proxy for rebuild cost.
    pub rebuild_slots: u64,
    /// Number of whole-structure resizes (capacity parameter changes).
    pub resizes: u64,
    /// Number of key comparisons performed.
    pub comparisons: u64,
    /// Number of insert operations completed.
    pub inserts: u64,
    /// Number of delete operations completed.
    pub deletes: u64,
    /// Number of point or range queries completed.
    pub queries: u64,
    /// Number of window gather/refill round-trips performed by group-commit
    /// batch applies (one per touched window, not one per element).
    pub batch_gathers: u64,
}

impl OpCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Total updates (inserts + deletes) recorded.
    pub fn updates(&self) -> u64 {
        self.inserts + self.deletes
    }

    /// Element moves per update, or 0 when no updates happened.
    pub fn moves_per_update(&self) -> f64 {
        if self.updates() == 0 {
            0.0
        } else {
            self.element_moves as f64 / self.updates() as f64
        }
    }

    /// Adds another counter set into this one.
    pub fn absorb(&mut self, other: &OpCounters) {
        self.element_moves += other.element_moves;
        self.rebuilds += other.rebuilds;
        self.rebuild_slots += other.rebuild_slots;
        self.resizes += other.resizes;
        self.comparisons += other.comparisons;
        self.inserts += other.inserts;
        self.deletes += other.deletes;
        self.queries += other.queries;
        self.batch_gathers += other.batch_gathers;
    }

    /// Returns the difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &OpCounters) -> OpCounters {
        OpCounters {
            element_moves: self.element_moves.saturating_sub(earlier.element_moves),
            rebuilds: self.rebuilds.saturating_sub(earlier.rebuilds),
            rebuild_slots: self.rebuild_slots.saturating_sub(earlier.rebuild_slots),
            resizes: self.resizes.saturating_sub(earlier.resizes),
            comparisons: self.comparisons.saturating_sub(earlier.comparisons),
            inserts: self.inserts.saturating_sub(earlier.inserts),
            deletes: self.deletes.saturating_sub(earlier.deletes),
            queries: self.queries.saturating_sub(earlier.queries),
            batch_gathers: self.batch_gathers.saturating_sub(earlier.batch_gathers),
        }
    }
}

impl fmt::Display for OpCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "moves={} rebuilds={} rebuild_slots={} resizes={} cmps={} ins={} del={} qry={} gathers={}",
            self.element_moves,
            self.rebuilds,
            self.rebuild_slots,
            self.resizes,
            self.comparisons,
            self.inserts,
            self.deletes,
            self.queries,
            self.batch_gathers
        )
    }
}

/// A shareable, internally mutable counter ledger.
///
/// A composite structure hands clones of the same `SharedCounters` to its
/// components so that e.g. the PMA and its rank tree report into a single
/// ledger that the benchmark harness reads once.
#[derive(Debug, Clone, Default)]
pub struct SharedCounters {
    inner: Arc<Mutex<OpCounters>>,
}

impl SharedCounters {
    /// Creates a zeroed shared ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a snapshot of the current totals.
    pub fn snapshot(&self) -> OpCounters {
        *locked(&self.inner)
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        locked(&self.inner).reset();
    }

    /// Applies `f` to the underlying counters.
    pub fn update<F: FnOnce(&mut OpCounters)>(&self, f: F) {
        f(&mut locked(&self.inner));
    }

    /// Adds `n` element moves.
    pub fn add_moves(&self, n: u64) {
        locked(&self.inner).element_moves += n;
    }

    /// Records a rebuild that rewrote `slots` slots.
    pub fn add_rebuild(&self, slots: u64) {
        let mut c = locked(&self.inner);
        c.rebuilds += 1;
        c.rebuild_slots += slots;
    }

    /// Records a whole-structure resize.
    pub fn add_resize(&self) {
        locked(&self.inner).resizes += 1;
    }

    /// Adds `n` key comparisons.
    pub fn add_comparisons(&self, n: u64) {
        locked(&self.inner).comparisons += n;
    }

    /// Records a completed insert.
    pub fn add_insert(&self) {
        locked(&self.inner).inserts += 1;
    }

    /// Records a completed delete.
    pub fn add_delete(&self) {
        locked(&self.inner).deletes += 1;
    }

    /// Records one batch-commit window gather/refill round-trip.
    pub fn add_batch_gather(&self) {
        locked(&self.inner).batch_gathers += 1;
    }

    /// Records a completed query.
    pub fn add_query(&self) {
        locked(&self.inner).queries += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_counters_are_send_and_sync() {
        // Compile-time audit: every engine embeds a SharedCounters, so the
        // ledger being thread-safe is what lets whole engines migrate onto
        // the sharded service layer's worker threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedCounters>();
    }

    #[test]
    fn counters_start_zeroed() {
        let c = OpCounters::new();
        assert_eq!(c.element_moves, 0);
        assert_eq!(c.updates(), 0);
        assert_eq!(c.moves_per_update(), 0.0);
    }

    #[test]
    fn absorb_adds_fields() {
        let mut a = OpCounters::new();
        a.element_moves = 5;
        a.inserts = 1;
        let mut b = OpCounters::new();
        b.element_moves = 7;
        b.deletes = 2;
        a.absorb(&b);
        assert_eq!(a.element_moves, 12);
        assert_eq!(a.updates(), 3);
    }

    #[test]
    fn since_subtracts() {
        let mut before = OpCounters::new();
        before.element_moves = 10;
        let mut after = before;
        after.element_moves = 25;
        after.inserts = 3;
        let delta = after.since(&before);
        assert_eq!(delta.element_moves, 15);
        assert_eq!(delta.inserts, 3);
    }

    #[test]
    fn moves_per_update_divides() {
        let mut c = OpCounters::new();
        c.element_moves = 30;
        c.inserts = 10;
        c.deletes = 5;
        assert!((c.moves_per_update() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shared_counters_are_shared() {
        let shared = SharedCounters::new();
        let other = shared.clone();
        shared.add_moves(4);
        other.add_rebuild(16);
        other.add_insert();
        let snap = shared.snapshot();
        assert_eq!(snap.element_moves, 4);
        assert_eq!(snap.rebuilds, 1);
        assert_eq!(snap.rebuild_slots, 16);
        assert_eq!(snap.inserts, 1);
    }

    #[test]
    fn shared_reset_clears() {
        let shared = SharedCounters::new();
        shared.add_moves(4);
        shared.reset();
        assert_eq!(shared.snapshot(), OpCounters::new());
    }

    #[test]
    fn display_is_stable() {
        let mut c = OpCounters::new();
        c.element_moves = 1;
        let s = format!("{c}");
        assert!(s.contains("moves=1"));
    }
}
