//! A reusable gather buffer for rebuild paths.
//!
//! Every rebalance in the PMAs (and every structural rebuild elsewhere)
//! needs a temporary "all the elements of this window, in order" buffer.
//! Allocating a fresh `Vec` per rebalance puts an allocator round-trip on
//! the hot update path; [`Scratch`] keeps one buffer per structure and hands
//! it out by value so the borrow checker never sees the structure and the
//! buffer entangled. After warm-up the buffer's capacity has reached the
//! high-water mark of past rebuilds and steady-state rebalances allocate
//! nothing.

/// A per-structure scratch arena: a `Vec<T>` whose capacity survives reuse.
#[derive(Debug, Clone, Default)]
pub struct Scratch<T> {
    buf: Vec<T>,
}

impl<T> Scratch<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Takes the buffer out of the arena (empty, capacity preserved). Pair
    /// with [`Scratch::restore`]; taking twice without restoring simply
    /// yields a fresh buffer for the nested use.
    pub fn take(&mut self) -> Vec<T> {
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        buf
    }

    /// Returns a buffer to the arena, clearing it but keeping its capacity
    /// (the larger of the returned and currently held capacities wins).
    pub fn restore(&mut self, mut buf: Vec<T>) {
        buf.clear();
        if buf.capacity() > self.buf.capacity() {
            self.buf = buf;
        }
    }

    /// Current capacity of the held buffer.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_survives_reuse() {
        let mut scratch: Scratch<u64> = Scratch::new();
        let mut buf = scratch.take();
        buf.extend(0..1000);
        scratch.restore(buf);
        assert!(scratch.capacity() >= 1000);
        let buf = scratch.take();
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 1000);
        scratch.restore(buf);
    }

    #[test]
    fn nested_takes_are_safe() {
        let mut scratch: Scratch<u64> = Scratch::new();
        let mut a = scratch.take();
        a.extend(0..500);
        let b = scratch.take(); // nested: fresh buffer
        assert!(b.is_empty());
        scratch.restore(a);
        scratch.restore(b); // smaller capacity loses; arena keeps the 500-cap buffer
        assert!(scratch.capacity() >= 500);
    }
}
