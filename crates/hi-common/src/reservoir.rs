//! Reservoir sampling with deletes (paper §3.2).
//!
//! The PMA keeps one *balance element* per range, and Invariant 6 requires
//! the balance element to be uniformly distributed over the range's candidate
//! set after every operation. The paper maintains this with a reservoir of
//! size one extended to handle deletions:
//!
//! * when a new element joins the candidate set of current size `m`, it
//!   becomes the leader with probability `1/m`;
//! * when the leader leaves the candidate set (either because it was deleted
//!   or because the set's window slid past it), a new leader is drawn
//!   uniformly from the remaining candidates;
//! * when a non-leader leaves, nothing happens.
//!
//! [`ReservoirLeader`] implements exactly this game over an abstract universe
//! of candidate identifiers. The PMA uses it with *ranks relative to the
//! candidate window*, but the module is generic so the tests can exercise the
//! distributional guarantee (Lemma 5) in isolation.

use rand::Rng;

/// Decision returned by the reservoir when the candidate set changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaderChange {
    /// The previous leader remains the leader.
    Unchanged,
    /// A new leader was chosen; the payload is its index in the *current*
    /// candidate set (0-based).
    Elected(usize),
}

impl LeaderChange {
    /// Returns `true` when the leader changed.
    pub fn changed(&self) -> bool {
        matches!(self, LeaderChange::Elected(_))
    }
}

/// A size-one reservoir sampler over a dynamic candidate set, tracked by the
/// leader's 0-based index within the set.
///
/// The caller is responsible for describing how the candidate set evolves
/// (who enters, who leaves, how indices shift); the reservoir only decides
/// *who leads*. This mirrors how the PMA uses it: the candidate set is an
/// implicit window of ranks, and the PMA knows how an insert or delete shifts
/// that window.
///
/// # Examples
///
/// ```
/// use hi_common::reservoir::ReservoirLeader;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// // A candidate set of 8 elements, leader drawn uniformly.
/// let mut res = ReservoirLeader::elect(8, &mut rng);
/// assert!(res.leader_index() < 8);
/// // A new element replaces the candidate at index 3 (set size unchanged).
/// res.candidate_replaced(3, &mut rng);
/// assert!(res.leader_index() < 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReservoirLeader {
    size: usize,
    leader: usize,
}

impl ReservoirLeader {
    /// Elects an initial leader uniformly from a candidate set of `size`
    /// elements.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn elect<R: Rng + ?Sized>(size: usize, rng: &mut R) -> Self {
        assert!(size > 0, "candidate set must be non-empty");
        Self {
            size,
            leader: rng.gen_range(0..size),
        }
    }

    /// Creates a reservoir with a known leader (used when rebuilding a range
    /// re-elects leaders for all sub-ranges in one pass).
    ///
    /// # Panics
    ///
    /// Panics if `leader >= size`.
    pub fn with_leader(size: usize, leader: usize) -> Self {
        assert!(leader < size, "leader index out of bounds");
        Self { size, leader }
    }

    /// Size of the candidate set.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Returns `true` if the candidate set is empty (never true for a
    /// constructed reservoir; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Current leader's index within the candidate set.
    pub fn leader_index(&self) -> usize {
        self.leader
    }

    /// A brand-new element arrives at index `pos` and the element previously
    /// at the *other* end leaves, keeping the set size constant. This is the
    /// PMA's common case: the candidate window slides by one.
    ///
    /// `departed` is the index (before the shift) of the element that left.
    /// Indices of surviving elements shift accordingly; the new element is
    /// offered the leadership with probability `1/size` (standard reservoir
    /// step). If the departing element *was* the leader, a fresh leader is
    /// drawn uniformly from the survivors plus the newcomer.
    pub fn slide<R: Rng + ?Sized>(
        &mut self,
        departed: usize,
        arrived: usize,
        rng: &mut R,
    ) -> LeaderChange {
        debug_assert!(departed < self.size);
        debug_assert!(arrived < self.size);
        if self.leader == departed {
            // Leader left: re-elect uniformly over the new candidate set.
            self.leader = rng.gen_range(0..self.size);
            return LeaderChange::Elected(self.leader);
        }
        // Shift the surviving leader's index to account for the departure
        // and arrival. The window slides by one position, so a leader between
        // the two endpoints moves by one slot.
        if departed < arrived {
            // Window slid right: survivors shift left by one.
            if self.leader > departed {
                self.leader -= 1;
            }
        } else if departed > arrived {
            // Window slid left: survivors shift right by one.
            if self.leader < departed {
                self.leader += 1;
            }
        }
        // Reservoir step for the newcomer.
        if rng.gen_range(0..self.size) == 0 {
            self.leader = arrived;
            LeaderChange::Elected(arrived)
        } else {
            LeaderChange::Unchanged
        }
    }

    /// The candidate at index `pos` is replaced in place by a new element
    /// (e.g. a delete immediately followed by the window absorbing a
    /// neighbour at the same position). The newcomer is offered leadership
    /// with probability `1/size`; if the replaced candidate was the leader a
    /// fresh leader is drawn uniformly.
    pub fn candidate_replaced<R: Rng + ?Sized>(&mut self, pos: usize, rng: &mut R) -> LeaderChange {
        debug_assert!(pos < self.size);
        if self.leader == pos {
            self.leader = rng.gen_range(0..self.size);
            return LeaderChange::Elected(self.leader);
        }
        if rng.gen_range(0..self.size) == 0 {
            self.leader = pos;
            LeaderChange::Elected(pos)
        } else {
            LeaderChange::Unchanged
        }
    }

    /// Forces a uniform re-election (used after a range rebuild).
    pub fn reelect<R: Rng + ?Sized>(&mut self, rng: &mut R) -> LeaderChange {
        self.leader = rng.gen_range(0..self.size);
        LeaderChange::Elected(self.leader)
    }
}

/// Reference implementation of reservoir sampling with deletes over an
/// explicit set, used by tests and by the statistics harness to validate the
/// windowed version above.
///
/// Elements are arbitrary `u64` identifiers. The structure maintains a
/// uniformly random leader under arbitrary interleavings of `insert` and
/// `remove` (Lemma 5).
#[derive(Debug, Clone)]
pub struct ExplicitReservoir {
    members: Vec<u64>,
    leader: Option<usize>,
}

impl ExplicitReservoir {
    /// Creates an empty reservoir.
    pub fn new() -> Self {
        Self {
            members: Vec::new(),
            leader: None,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` when the reservoir has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Current leader, if any.
    pub fn leader(&self) -> Option<u64> {
        self.leader.map(|i| self.members[i])
    }

    /// Adds a member; it becomes leader with probability `1/len`.
    pub fn insert<R: Rng + ?Sized>(&mut self, id: u64, rng: &mut R) {
        self.members.push(id);
        let n = self.members.len();
        if self.leader.is_none() || rng.gen_range(0..n) == 0 {
            self.leader = Some(n - 1);
        }
    }

    /// Removes a member (no-op if absent). If the leader is removed a new
    /// leader is elected uniformly from the remaining members.
    pub fn remove<R: Rng + ?Sized>(&mut self, id: u64, rng: &mut R) {
        let Some(pos) = self.members.iter().position(|&m| m == id) else {
            return;
        };
        let was_leader = self.leader == Some(pos);
        self.members.swap_remove(pos);
        match self.leader {
            Some(l) if l == self.members.len() => {
                // The former last element was the leader and has been moved
                // into `pos` by swap_remove.
                self.leader = Some(pos);
            }
            _ => {}
        }
        if self.members.is_empty() {
            self.leader = None;
        } else if was_leader {
            self.leader = Some(rng.gen_range(0..self.members.len()));
        }
    }
}

impl Default for ExplicitReservoir {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chi2_uniform(counts: &[usize]) -> f64 {
        let total: usize = counts.iter().sum();
        let expected = total as f64 / counts.len() as f64;
        counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum()
    }

    #[test]
    fn elect_is_in_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for size in 1..64 {
            let r = ReservoirLeader::elect(size, &mut rng);
            assert!(r.leader_index() < size);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn elect_empty_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        ReservoirLeader::elect(0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn with_leader_out_of_bounds_panics() {
        ReservoirLeader::with_leader(4, 4);
    }

    #[test]
    fn initial_election_is_uniform() {
        let size = 10;
        let trials = 20_000;
        let mut counts = vec![0usize; size];
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(t as u64);
            let r = ReservoirLeader::elect(size, &mut rng);
            counts[r.leader_index()] += 1;
        }
        // 9 dof, 99.9% quantile ≈ 27.9.
        assert!(chi2_uniform(&counts) < 27.9, "counts = {counts:?}");
    }

    #[test]
    fn slide_keeps_leader_uniform() {
        // Slide the window right many times; the leader should remain
        // uniform over the 8 window positions.
        let size = 8;
        let trials = 16_000;
        let slides = 40;
        let mut counts = vec![0usize; size];
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(900_000 + t as u64);
            let mut r = ReservoirLeader::elect(size, &mut rng);
            for _ in 0..slides {
                // Window slides right: index 0 departs, newcomer lands at the
                // last index.
                r.slide(0, size - 1, &mut rng);
            }
            counts[r.leader_index()] += 1;
        }
        // 7 dof, 99.9% quantile ≈ 24.3.
        assert!(chi2_uniform(&counts) < 24.3, "counts = {counts:?}");
    }

    #[test]
    fn slide_left_keeps_leader_uniform() {
        let size = 8;
        let trials = 16_000;
        let slides = 40;
        let mut counts = vec![0usize; size];
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(300_000 + t as u64);
            let mut r = ReservoirLeader::elect(size, &mut rng);
            for _ in 0..slides {
                // Window slides left: last index departs, newcomer at 0.
                r.slide(size - 1, 0, &mut rng);
            }
            counts[r.leader_index()] += 1;
        }
        assert!(chi2_uniform(&counts) < 24.3, "counts = {counts:?}");
    }

    #[test]
    fn replaced_keeps_leader_uniform() {
        let size = 6;
        let trials = 12_000;
        let mut counts = vec![0usize; size];
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(77_000 + t as u64);
            let mut r = ReservoirLeader::elect(size, &mut rng);
            for step in 0..30 {
                r.candidate_replaced(step % size, &mut rng);
            }
            counts[r.leader_index()] += 1;
        }
        // 5 dof, 99.9% quantile ≈ 20.5.
        assert!(chi2_uniform(&counts) < 20.5, "counts = {counts:?}");
    }

    #[test]
    fn explicit_reservoir_uniform_under_deletes() {
        // Insert 0..12, delete the evens, check leader uniform over odds.
        let trials = 12_000;
        let mut counts = std::collections::HashMap::new();
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(40_000 + t as u64);
            let mut res = ExplicitReservoir::new();
            for id in 0..12u64 {
                res.insert(id, &mut rng);
            }
            for id in (0..12u64).filter(|x| x % 2 == 0) {
                res.remove(id, &mut rng);
            }
            *counts.entry(res.leader().unwrap()).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 6);
        let vec: Vec<usize> = (0..12u64)
            .filter(|x| x % 2 == 1)
            .map(|k| counts[&k])
            .collect();
        assert!(chi2_uniform(&vec) < 20.5, "counts = {vec:?}");
    }

    #[test]
    fn explicit_reservoir_empty_after_removing_all() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut res = ExplicitReservoir::new();
        for id in 0..5 {
            res.insert(id, &mut rng);
        }
        for id in 0..5 {
            res.remove(id, &mut rng);
        }
        assert!(res.is_empty());
        assert_eq!(res.leader(), None);
    }

    #[test]
    fn explicit_reservoir_remove_absent_is_noop() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut res = ExplicitReservoir::new();
        res.insert(1, &mut rng);
        res.remove(42, &mut rng);
        assert_eq!(res.len(), 1);
        assert_eq!(res.leader(), Some(1));
    }

    #[test]
    fn reelect_changes_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut r = ReservoirLeader::elect(5, &mut rng);
        for _ in 0..100 {
            let ev = r.reelect(&mut rng);
            assert!(ev.changed());
            assert!(r.leader_index() < 5);
        }
    }
}
