//! Shared building blocks for the history-independent dictionaries in this
//! workspace.
//!
//! This crate contains the substrates that the paper
//! *Anti-Persistence on Persistent Storage* (PODS 2016) relies on but does not
//! itself contribute:
//!
//! * [`capacity`] — the weakly history-independent dynamic-array capacity rule
//!   of Hartline et al. (paper §2.1): the backing size of an `n`-element array
//!   is kept uniformly distributed over `{n, …, 2n−1}` with only `O(1/n)`
//!   resize probability per update.
//! * [`reservoir`] — reservoir sampling with deletes (paper §3.2), used to keep
//!   every balance element uniformly distributed over its candidate set.
//! * [`rng`] — deterministic, splittable random-number plumbing so that every
//!   structure in the workspace can be driven reproducibly in tests and
//!   benchmarks while still modelling the "secret coins" of the WHI analyses.
//! * [`stats`] — a small statistics toolkit (χ² goodness-of-fit, regularized
//!   incomplete gamma, Kolmogorov–Smirnov, histograms) used to reproduce the
//!   paper's §4.3 uniformity experiment and to *test* history independence.
//! * [`traits`] — the `RankedSequence` / `Dictionary` abstractions shared by
//!   the PMA, the cache-oblivious B-tree, the skip lists and the B-tree.
//! * [`counters`] — cheap operation counters (element moves, rebuilds, probes)
//!   that the benchmark harnesses read to regenerate the paper's figures.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod bitmap;
pub mod capacity;
pub mod counters;
pub mod reservoir;
pub mod rng;
pub mod scratch;
pub mod stats;
pub mod sync;
pub mod traits;

pub use batch::{apply_keyed_batch, BatchOp, SeekFinger};
pub use bitmap::Bitmap;
pub use capacity::HiCapacity;
pub use counters::{OpCounters, SharedCounters};
pub use reservoir::ReservoirLeader;
pub use rng::{DetRng, RngSource};
pub use scratch::Scratch;
pub use traits::{Dictionary, KeyValue, Occupancy, RankError, RankedDict, RankedSequence};
