//! The workspace's panic-containment policy, in one place: how poisoned
//! locks are recovered and how captured panic payloads are rendered.
//!
//! A `Mutex` poisons when a thread panics while holding it, and the common
//! reflex — `lock().expect("poisoned")` — turns one thread's panic into a
//! cascade through every thread that shares the ledger. All mutexes in this
//! workspace guard *accounting* state (operation counters, simulated-I/O
//! ledgers): plain integers that are consistent after every individual
//! mutation, with no multi-step invariant a mid-update panic could tear.
//! For such state the right policy is to take the guard back and keep
//! counting; [`locked`] encodes that once, so no call site needs its own
//! panic and its own justification.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard if a panicking thread poisoned it.
///
/// Only use this for state that is valid after every single mutation (e.g.
/// counter ledgers). State with multi-step invariants should propagate a
/// typed error instead of recovering.
pub fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a captured panic payload (from [`std::panic::catch_unwind`] or a
/// failed [`std::thread::JoinHandle::join`]) as a human-readable message.
///
/// `panic!("…")` payloads are `&str` or `String`; anything else (a custom
/// `panic_any` value) gets a fixed placeholder. Used by containment layers —
/// the sharded service quarantines a shard whose worker panicked and carries
/// this text in the typed error instead of re-raising the panic.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn renders_str_and_string_payloads() {
        let caught =
            std::panic::catch_unwind(|| panic!("literal message")).expect_err("must panic");
        assert_eq!(panic_message(caught.as_ref()), "literal message");
        let caught = std::panic::catch_unwind(|| panic!("formatted {}", 7)).expect_err("panics");
        assert_eq!(panic_message(caught.as_ref()), "formatted 7");
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(42u32)).expect_err("panics");
        assert_eq!(panic_message(caught.as_ref()), "opaque panic payload");
    }

    #[test]
    fn locks_normally() {
        let m = Mutex::new(5);
        *locked(&m) += 1;
        assert_eq!(*locked(&m), 6);
    }

    #[test]
    fn recovers_a_poisoned_lock() {
        let m = Arc::new(Mutex::new(41));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        *locked(&m) += 1;
        assert_eq!(*locked(&m), 42);
    }
}
