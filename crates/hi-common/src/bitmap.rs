//! A `u64`-word occupancy bitmap.
//!
//! The PMAs' memory representation — the thing the history-independence
//! definitions quantify over — is *which slots are occupied*. This module
//! stores that representation directly as packed `u64` words, so that
//! occupancy counts are popcounts, gap scans are word scans, and the whole
//! map costs one bit per slot instead of the discriminant-plus-padding of a
//! `Vec<Option<T>>` slot array (16 bytes per slot for `u64` records).
//!
//! All range arguments are half-open slot intervals `[start, end)`.

/// A fixed-length bitmap over array slots, packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates an all-zeros bitmap over `len` slots.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Number of slots covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the bitmap covers zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed words backing the map (the last word's high bits beyond
    /// `len` are always zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Tests slot `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets slot `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears slot `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Mask covering the bits of word `w` that fall inside `[start, end)`.
    #[inline]
    fn word_mask(w: usize, start: usize, end: usize) -> u64 {
        let lo = start.max(w * 64);
        let hi = end.min(w * 64 + 64);
        if lo >= hi {
            return 0;
        }
        let lo_bit = lo - w * 64;
        let span = hi - lo;
        if span == 64 {
            u64::MAX
        } else {
            ((1u64 << span) - 1) << lo_bit
        }
    }

    /// Clears every slot in `[start, end)`, word-wise.
    pub fn clear_range(&mut self, start: usize, end: usize) {
        debug_assert!(start <= end && end <= self.len);
        if start >= end {
            return;
        }
        for w in start / 64..=(end - 1) / 64 {
            self.words[w] &= !Self::word_mask(w, start, end);
        }
    }

    /// Number of set slots in `[start, end)` via popcount.
    pub fn count_range(&self, start: usize, end: usize) -> usize {
        debug_assert!(start <= end && end <= self.len);
        if start >= end {
            return 0;
        }
        (start / 64..=(end - 1) / 64)
            .map(|w| (self.words[w] & Self::word_mask(w, start, end)).count_ones() as usize)
            .sum()
    }

    /// Total number of set slots.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Index of the first set slot at or after `from`, scanning word by word.
    pub fn next_set_bit(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut w = from / 64;
        let mut word = self.words[w] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                let i = w * 64 + word.trailing_zeros() as usize;
                return (i < self.len).then_some(i);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }

    /// Slot of the `n`-th (0-based) set bit in `[start, end)`, if it exists.
    pub fn nth_set_in_range(&self, start: usize, end: usize, mut n: usize) -> Option<usize> {
        debug_assert!(start <= end && end <= self.len);
        if start >= end {
            return None;
        }
        for w in start / 64..=(end - 1) / 64 {
            let mut word = self.words[w] & Self::word_mask(w, start, end);
            let ones = word.count_ones() as usize;
            if n >= ones {
                n -= ones;
                continue;
            }
            // The n-th set bit lives in this word; peel bits off.
            for _ in 0..n {
                word &= word - 1;
            }
            return Some(w * 64 + word.trailing_zeros() as usize);
        }
        None
    }

    /// Replaces the bits of `[start, start + len)` with the low `len` bits
    /// of `pattern` (word 0 = slots `start..start + 64`, low bit first).
    /// Word-wise: each affected bitmap word is rewritten with one masked
    /// store, so rewriting a window costs `O(len / 64)` operations however
    /// many bits are set.
    pub fn write_range_bits(&mut self, start: usize, len: usize, pattern: &[u64]) {
        debug_assert!(start + len <= self.len);
        debug_assert!(pattern.len() >= len.div_ceil(64));
        if len == 0 {
            return;
        }
        // 64 pattern bits starting at pattern-bit offset `q`, zero-extended.
        let bits_at = |q: usize| -> u64 {
            let i = q / 64;
            let s = q % 64;
            let lo = pattern.get(i).copied().unwrap_or(0) >> s;
            if s == 0 {
                lo
            } else {
                lo | (pattern.get(i + 1).copied().unwrap_or(0) << (64 - s))
            }
        };
        let end = start + len;
        let shift = start % 64;
        let w0 = start / 64;
        for w in w0..=(end - 1) / 64 {
            // Pattern bits aligned to output word `w`: the first word takes
            // pattern offset 0 shifted up by `start % 64`; later words read
            // at offset `w·64 − start`.
            let value = if w == w0 {
                bits_at(0) << shift
            } else {
                bits_at(w * 64 - start)
            };
            let mask = Self::word_mask(w, start, end);
            self.words[w] = (self.words[w] & !mask) | (value & mask);
        }
    }

    /// Largest run of clear slots *between two set slots* of `[start, end)`
    /// (leading and trailing runs are not counted), scanning word by word.
    pub fn max_interior_gap(&self, start: usize, end: usize) -> usize {
        debug_assert!(start <= end && end <= self.len);
        let mut max_gap = 0usize;
        let mut prev: Option<usize> = None;
        if start >= end {
            return 0;
        }
        for w in start / 64..=(end - 1) / 64 {
            let mut word = self.words[w] & Self::word_mask(w, start, end);
            while word != 0 {
                let i = w * 64 + word.trailing_zeros() as usize;
                if let Some(p) = prev {
                    max_gap = max_gap.max(i - p - 1);
                }
                prev = Some(i);
                word &= word - 1;
            }
        }
        max_gap
    }

    /// Decodes the bitmap into one `bool` per slot.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Naive reference model: the old `Vec<Option<()>>`-style slot probing,
    /// against which the word-wise operations are pinned.
    struct Reference(Vec<bool>);

    impl Reference {
        fn count_range(&self, start: usize, end: usize) -> usize {
            self.0[start..end].iter().filter(|&&b| b).count()
        }

        fn max_interior_gap(&self, start: usize, end: usize) -> usize {
            let mut max_gap = 0usize;
            let mut current = 0usize;
            let mut seen = false;
            for &b in &self.0[start..end] {
                if b {
                    if seen {
                        max_gap = max_gap.max(current);
                    }
                    seen = true;
                    current = 0;
                } else {
                    current += 1;
                }
            }
            max_gap
        }

        fn nth_set_in_range(&self, start: usize, end: usize, n: usize) -> Option<usize> {
            self.0[start..end]
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .nth(n)
                .map(|(i, _)| start + i)
        }
    }

    fn random_pair(len: usize, density: f64, seed: u64) -> (Bitmap, Reference) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bm = Bitmap::new(len);
        let mut bools = vec![false; len];
        for (i, b) in bools.iter_mut().enumerate() {
            if rng.gen_bool(density) {
                bm.set(i);
                *b = true;
            }
        }
        (bm, Reference(bools))
    }

    #[test]
    fn set_clear_get_roundtrip() {
        let mut bm = Bitmap::new(130);
        assert_eq!(bm.len(), 130);
        bm.set(0);
        bm.set(63);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(0) && bm.get(63) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1) && !bm.get(128));
        bm.clear(64);
        assert!(!bm.get(64));
        assert_eq!(bm.count_ones(), 3);
    }

    #[test]
    fn count_range_matches_reference_on_random_patterns() {
        for (seed, density) in [(1u64, 0.1), (2, 0.5), (3, 0.9), (4, 0.0), (5, 1.0)] {
            let len = 317;
            let (bm, reference) = random_pair(len, density, seed);
            for start in (0..len).step_by(13) {
                for end in (start..=len).step_by(17) {
                    assert_eq!(
                        bm.count_range(start, end),
                        reference.count_range(start, end),
                        "seed {seed} range [{start}, {end})"
                    );
                }
            }
            assert_eq!(bm.count_ones(), reference.count_range(0, len));
        }
    }

    #[test]
    fn max_interior_gap_matches_reference_on_random_patterns() {
        for (seed, density) in [(10u64, 0.05), (11, 0.3), (12, 0.7), (13, 0.02)] {
            let len = 413;
            let (bm, reference) = random_pair(len, density, seed);
            for start in (0..len).step_by(19) {
                for end in (start..=len).step_by(23) {
                    assert_eq!(
                        bm.max_interior_gap(start, end),
                        reference.max_interior_gap(start, end),
                        "seed {seed} range [{start}, {end})"
                    );
                }
            }
        }
    }

    #[test]
    fn nth_set_matches_reference_on_random_patterns() {
        for seed in [20u64, 21, 22] {
            let len = 200;
            let (bm, reference) = random_pair(len, 0.4, seed);
            for start in (0..len).step_by(11) {
                for end in (start..=len).step_by(29) {
                    let total = reference.count_range(start, end);
                    for n in 0..total + 2 {
                        assert_eq!(
                            bm.nth_set_in_range(start, end, n),
                            reference.nth_set_in_range(start, end, n),
                            "seed {seed} range [{start}, {end}) n {n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn next_set_bit_walks_every_set_slot() {
        let (bm, reference) = random_pair(260, 0.25, 33);
        let mut via_scan = Vec::new();
        let mut at = 0usize;
        while let Some(i) = bm.next_set_bit(at) {
            via_scan.push(i);
            at = i + 1;
        }
        let expected: Vec<usize> = reference
            .0
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(via_scan, expected);
        assert_eq!(bm.next_set_bit(260), None);
    }

    #[test]
    fn clear_range_is_word_exact() {
        let mut bm = Bitmap::new(300);
        for i in 0..300 {
            bm.set(i);
        }
        bm.clear_range(10, 200);
        assert_eq!(bm.count_ones(), 300 - 190);
        assert!(bm.get(9) && !bm.get(10) && !bm.get(199) && bm.get(200));
        bm.clear_range(0, 0);
        assert_eq!(bm.count_ones(), 110);
        bm.clear_range(0, 300);
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn write_range_bits_matches_per_bit_reference() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..500 {
            let len_total = 1 + rng.gen_range(0..300usize);
            let (mut bm, reference) = random_pair(len_total, 0.5, rng.gen());
            let mut bools = reference.0;
            let start = rng.gen_range(0..len_total);
            let len = rng.gen_range(0..=len_total - start);
            // Random pattern over `len` bits.
            let mut pattern = vec![0u64; len.div_ceil(64).max(1)];
            for b in 0..len {
                if rng.gen_bool(0.5) {
                    pattern[b / 64] |= 1 << (b % 64);
                    bools[start + b] = true;
                } else {
                    bools[start + b] = false;
                }
            }
            bm.write_range_bits(start, len, &pattern);
            assert_eq!(
                bm.to_bools(),
                bools,
                "start={start} len={len} total={len_total}"
            );
        }
    }

    #[test]
    fn to_bools_roundtrip() {
        let (bm, reference) = random_pair(97, 0.5, 44);
        assert_eq!(bm.to_bools(), reference.0);
    }

    #[test]
    fn empty_bitmap() {
        let bm = Bitmap::new(0);
        assert!(bm.is_empty());
        assert_eq!(bm.count_ones(), 0);
        assert_eq!(bm.next_set_bit(0), None);
        assert_eq!(bm.to_bools(), Vec::<bool>::new());
    }
}
