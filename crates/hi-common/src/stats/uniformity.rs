//! Uniformity testing harnesses.
//!
//! The paper's §4.3 experiment works in two stages:
//!
//! 1. For every candidate set (of size ≥ 8, with expected bucket counts
//!    ≥ 10), χ²-test the observed balance-element positions against the
//!    uniform distribution, producing one p-value per candidate set.
//! 2. The p-values themselves should be uniform on `[0, 1]` under the null
//!    hypothesis, so run a second χ² test on the binned p-values. The paper
//!    reports `p = 0.47` over `n = 148` p-values.
//!
//! [`uniformity_p_value`] implements stage 1 and [`uniformity_of_p_values`]
//! stage 2; [`UniformityReport`] bundles the combined outcome for the E4
//! harness and the history-independence integration tests.

use super::chi2::{chi2_gof_uniform, Chi2Outcome};

/// Minimum expected count per bucket for a χ² test to be considered valid
/// (the paper uses ten).
pub const MIN_EXPECTED_PER_BUCKET: f64 = 10.0;

/// Stage-1 test: are these discrete observations (category counts) uniform?
/// Returns `None` if the test would be invalid (fewer than two categories or
/// expected bucket counts below [`MIN_EXPECTED_PER_BUCKET`]).
pub fn uniformity_p_value(counts: &[u64]) -> Option<Chi2Outcome> {
    if counts.len() < 2 {
        return None;
    }
    let total: u64 = counts.iter().sum();
    let expected = total as f64 / counts.len() as f64;
    if expected < MIN_EXPECTED_PER_BUCKET {
        return None;
    }
    Some(chi2_gof_uniform(counts))
}

/// Stage-2 test: are these p-values uniform on `[0, 1]`?
///
/// The p-values are binned into `bins` equal-width buckets and χ²-tested
/// against uniform. Returns `None` when there are too few p-values for the
/// expected bucket counts to reach [`MIN_EXPECTED_PER_BUCKET`].
pub fn uniformity_of_p_values(p_values: &[f64], bins: usize) -> Option<Chi2Outcome> {
    assert!(bins >= 2, "need at least two bins");
    if (p_values.len() as f64) / (bins as f64) < MIN_EXPECTED_PER_BUCKET {
        return None;
    }
    let mut counts = vec![0u64; bins];
    for &p in p_values {
        assert!((0.0..=1.0).contains(&p), "p-value {p} outside [0, 1]");
        let idx = ((p * bins as f64) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    Some(chi2_gof_uniform(&counts))
}

/// Combined two-stage uniformity report, mirroring the paper's §4.3 numbers.
#[derive(Debug, Clone)]
pub struct UniformityReport {
    /// Stage-1 p-values, one per tested candidate set.
    pub per_set_p_values: Vec<f64>,
    /// Number of candidate sets skipped because they had too few samples.
    pub skipped_sets: usize,
    /// Stage-2 outcome over the p-values (None when too few p-values).
    pub meta: Option<Chi2Outcome>,
}

impl UniformityReport {
    /// Builds a report from per-candidate-set position counts.
    ///
    /// Each entry of `per_set_counts` is the histogram of observed balance
    /// positions for one candidate set across all trials.
    pub fn from_counts(per_set_counts: &[Vec<u64>], meta_bins: usize) -> Self {
        let mut per_set_p_values = Vec::new();
        let mut skipped_sets = 0usize;
        for counts in per_set_counts {
            match uniformity_p_value(counts) {
                Some(outcome) => per_set_p_values.push(outcome.p_value),
                None => skipped_sets += 1,
            }
        }
        let meta = uniformity_of_p_values(&per_set_p_values, meta_bins);
        Self {
            per_set_p_values,
            skipped_sets,
            meta,
        }
    }

    /// Number of candidate sets that produced a valid p-value (the paper's
    /// `n = 148`).
    pub fn tested_sets(&self) -> usize {
        self.per_set_p_values.len()
    }

    /// The stage-2 p-value (the paper's `p = 0.47`), if available.
    pub fn meta_p_value(&self) -> Option<f64> {
        self.meta.map(|m| m.p_value)
    }

    /// Returns `true` when no statistically significant deviation from
    /// uniformity was found at level `alpha`.
    pub fn consistent_with_uniform(&self, alpha: f64) -> bool {
        match self.meta {
            Some(m) => m.p_value >= alpha,
            // Without a meta test fall back to requiring most individual sets
            // to pass (Bonferroni-ish; only used at tiny scales in tests).
            None => {
                let failures = self
                    .per_set_p_values
                    .iter()
                    .filter(|&&p| p < alpha / (self.per_set_p_values.len().max(1) as f64))
                    .count();
                failures == 0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn uniform_counts_pass() {
        let outcome = uniformity_p_value(&[50, 48, 52, 50]).unwrap();
        assert!(outcome.p_value > 0.5);
    }

    #[test]
    fn small_samples_rejected() {
        assert!(uniformity_p_value(&[3, 2, 4]).is_none());
        assert!(uniformity_p_value(&[500]).is_none());
    }

    #[test]
    fn skewed_counts_fail() {
        let outcome = uniformity_p_value(&[500, 20, 20, 20]).unwrap();
        assert!(outcome.p_value < 1e-6);
    }

    #[test]
    fn p_values_from_uniform_samples_are_uniform() {
        // Simulate the full two-stage pipeline with genuinely uniform data.
        let mut rng = StdRng::seed_from_u64(12345);
        let sets = 150usize;
        let buckets = 8usize;
        let samples_per_set = 400usize;
        let mut per_set_counts = Vec::new();
        for _ in 0..sets {
            let mut counts = vec![0u64; buckets];
            for _ in 0..samples_per_set {
                counts[rng.gen_range(0..buckets)] += 1;
            }
            per_set_counts.push(counts);
        }
        let report = UniformityReport::from_counts(&per_set_counts, 10);
        assert_eq!(report.tested_sets(), sets);
        assert_eq!(report.skipped_sets, 0);
        let meta = report.meta.expect("enough p-values for meta test");
        assert!(
            meta.p_value > 0.001,
            "meta p-value unexpectedly small: {}",
            meta.p_value
        );
        assert!(report.consistent_with_uniform(0.001));
    }

    #[test]
    fn biased_sets_are_detected() {
        // Every set heavily prefers bucket 0: stage-1 p-values collapse to 0
        // and the meta test must reject.
        let sets = 120usize;
        let per_set_counts: Vec<Vec<u64>> = (0..sets).map(|_| vec![300, 20, 20, 20]).collect();
        let report = UniformityReport::from_counts(&per_set_counts, 10);
        assert!(!report.consistent_with_uniform(0.01));
    }

    #[test]
    fn meta_test_needs_enough_p_values() {
        assert!(uniformity_of_p_values(&[0.5; 30], 10).is_none());
        assert!(uniformity_of_p_values(&[0.5; 200], 10).is_some());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_p_value_panics() {
        uniformity_of_p_values(&[1.5; 200], 10);
    }
}
