//! Log-gamma and regularized incomplete gamma functions.
//!
//! These are the only special functions needed to compute χ² p-values. The
//! implementations follow the classic series / continued-fraction split
//! (Numerical Recipes `gammp`/`gammq`): the series converges quickly for
//! `x < a + 1`, the Lentz continued fraction for `x ≥ a + 1`. Accuracy is
//! far beyond what the statistical tests in this workspace require (absolute
//! error below 1e-10 over the tested domain).

/// Natural log of the gamma function, via the Lanczos approximation (g = 7,
/// n = 9 coefficients). Valid for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// `P(a, x) = γ(a, x) / Γ(a)`, increasing from 0 at `x = 0` to 1 as
/// `x → ∞`. Requires `a > 0` and `x ≥ 0`.
pub fn reg_gamma_lower(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_gamma_lower requires a > 0");
    assert!(x >= 0.0, "reg_gamma_lower requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        lower_series(a, x)
    } else {
        1.0 - upper_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn reg_gamma_upper(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_gamma_upper requires a > 0");
    assert!(x >= 0.0, "reg_gamma_upper requires x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - lower_series(a, x)
    } else {
        upper_continued_fraction(a, x)
    }
}

/// Series expansion of `P(a, x)`, accurate for `x < a + 1`.
fn lower_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp()
}

/// Lentz continued-fraction evaluation of `Q(a, x)`, accurate for `x ≥ a + 1`.
fn upper_continued_fraction(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    (a * x.ln() - x - ln_gamma(a)).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)! for integer n.
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!(
                close(ln_gamma(n as f64), fact.ln(), 1e-9),
                "n = {n}: {} vs {}",
                ln_gamma(n as f64),
                fact.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-10
        ));
    }

    #[test]
    fn lower_plus_upper_is_one() {
        for &a in &[0.5, 1.0, 2.5, 7.0, 30.0] {
            for &x in &[0.0, 0.3, 1.0, 2.9, 8.0, 35.0] {
                let p = reg_gamma_lower(a, x);
                let q = reg_gamma_upper(a, x);
                assert!(close(p + q, 1.0, 1e-10), "a={a} x={x}: {p} + {q}");
            }
        }
    }

    #[test]
    fn exponential_special_case() {
        // For a = 1, P(1, x) = 1 − e^{-x}.
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            assert!(close(reg_gamma_lower(1.0, x), 1.0 - (-x).exp(), 1e-10));
        }
    }

    #[test]
    fn known_chi2_quantiles() {
        // P(k/2, x/2) at known chi-square CDF points:
        // CDF of chi2 with 1 dof at x = 3.841 is ≈ 0.95.
        assert!(close(reg_gamma_lower(0.5, 3.841 / 2.0), 0.95, 2e-3));
        // CDF of chi2 with 10 dof at x = 18.307 is ≈ 0.95.
        assert!(close(reg_gamma_lower(5.0, 18.307 / 2.0), 0.95, 2e-3));
    }

    #[test]
    fn monotone_in_x() {
        let mut prev = 0.0;
        for i in 0..100 {
            let x = i as f64 * 0.2;
            let p = reg_gamma_lower(3.0, x);
            assert!(p >= prev - 1e-12);
            prev = p;
        }
    }

    #[test]
    #[should_panic(expected = "a > 0")]
    fn zero_a_panics() {
        reg_gamma_lower(0.0, 1.0);
    }
}
