//! χ² goodness-of-fit testing.
//!
//! Used to reproduce the paper's §4.3 uniformity experiment and as the
//! workhorse behind the workspace's statistical tests of history
//! independence.

use super::gamma::reg_gamma_upper;

/// Result of a χ² goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Outcome {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom used.
    pub dof: usize,
    /// The p-value (survival function of the statistic).
    pub p_value: f64,
}

impl Chi2Outcome {
    /// Returns `true` when the null hypothesis is *not* rejected at the given
    /// significance level (e.g. 0.01).
    pub fn consistent_at(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Survival function of the χ² distribution with `dof` degrees of freedom:
/// `Pr[X ≥ x]`.
pub fn chi2_survival(x: f64, dof: usize) -> f64 {
    assert!(
        dof > 0,
        "chi-square requires at least one degree of freedom"
    );
    assert!(x >= 0.0, "chi-square statistic must be non-negative");
    reg_gamma_upper(dof as f64 / 2.0, x / 2.0)
}

/// χ² statistic of observed counts against a uniform expectation.
pub fn chi2_statistic_uniform(observed: &[u64]) -> f64 {
    assert!(
        observed.len() >= 2,
        "need at least two categories for a chi-square test"
    );
    let total: u64 = observed.iter().sum();
    let expected = total as f64 / observed.len() as f64;
    assert!(expected > 0.0, "cannot test with zero observations");
    observed
        .iter()
        .map(|&o| {
            let d = o as f64 - expected;
            d * d / expected
        })
        .sum()
}

/// χ² statistic of observed counts against explicit expected counts.
pub fn chi2_statistic(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(
        observed.len(),
        expected.len(),
        "observed and expected must have the same length"
    );
    assert!(observed.len() >= 2, "need at least two categories");
    observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            assert!(e > 0.0, "expected counts must be positive");
            let d = o as f64 - e;
            d * d / e
        })
        .sum()
}

/// Goodness-of-fit test of observed counts against the uniform distribution
/// over the categories. Degrees of freedom are `categories − 1`.
pub fn chi2_gof_uniform(observed: &[u64]) -> Chi2Outcome {
    let statistic = chi2_statistic_uniform(observed);
    let dof = observed.len() - 1;
    Chi2Outcome {
        statistic,
        dof,
        p_value: chi2_survival(statistic, dof),
    }
}

/// Goodness-of-fit test against explicit expected counts.
pub fn chi2_gof(observed: &[u64], expected: &[f64]) -> Chi2Outcome {
    let statistic = chi2_statistic(observed, expected);
    let dof = observed.len() - 1;
    Chi2Outcome {
        statistic,
        dof,
        p_value: chi2_survival(statistic, dof),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_known_values() {
        // chi2 with 1 dof: Pr[X >= 3.841] ≈ 0.05.
        assert!((chi2_survival(3.841, 1) - 0.05).abs() < 2e-3);
        // chi2 with 5 dof: Pr[X >= 11.07] ≈ 0.05.
        assert!((chi2_survival(11.07, 5) - 0.05).abs() < 2e-3);
        // chi2 with 10 dof: Pr[X >= 23.209] ≈ 0.01.
        assert!((chi2_survival(23.209, 10) - 0.01).abs() < 1e-3);
    }

    #[test]
    fn uniform_counts_give_zero_statistic() {
        let outcome = chi2_gof_uniform(&[100, 100, 100, 100]);
        assert!(outcome.statistic.abs() < 1e-12);
        assert!((outcome.p_value - 1.0).abs() < 1e-9);
        assert_eq!(outcome.dof, 3);
    }

    #[test]
    fn skewed_counts_give_small_p() {
        let outcome = chi2_gof_uniform(&[1000, 10, 10, 10]);
        assert!(outcome.p_value < 1e-6);
        assert!(!outcome.consistent_at(0.01));
    }

    #[test]
    fn statistic_matches_hand_computation() {
        // observed [12, 8], expected [10, 10]: chi2 = 0.4 + 0.4 = 0.8.
        let s = chi2_statistic_uniform(&[12, 8]);
        assert!((s - 0.8).abs() < 1e-12);
    }

    #[test]
    fn explicit_expected_counts() {
        let outcome = chi2_gof(&[30, 70], &[25.0, 75.0]);
        // chi2 = 25/25 + 25/75 = 1.3333…
        assert!((outcome.statistic - (1.0 + 1.0 / 3.0)).abs() < 1e-9);
        assert!(outcome.consistent_at(0.01));
    }

    #[test]
    #[should_panic(expected = "at least two categories")]
    fn single_category_panics() {
        chi2_statistic_uniform(&[5]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        chi2_statistic(&[1, 2], &[1.0]);
    }
}
