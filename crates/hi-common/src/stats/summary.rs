//! Percentile summaries of sample distributions.
//!
//! Lemma 15 is a statement about the *tail* of the per-element search cost in
//! the folklore B-skip list; the corresponding experiment (E8) reports
//! median, p99 and maximum I/O counts. [`Summary`] computes those from a
//! vector of samples.

/// Mean / percentile summary of a set of `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum sample.
    pub min: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum sample.
    pub max: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Computes a summary of `samples`. Returns `None` when empty.
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        // hi-lint: allow(panic-surface): a NaN sample is a harness bug; aborting the summary beats silently skewing the stats
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        Some(Self {
            count,
            mean,
            min: sorted[0],
            p50: percentile(&sorted, 0.50),
            p90: percentile(&sorted, 0.90),
            p99: percentile(&sorted, 0.99),
            max: sorted[count - 1],
            std_dev: var.sqrt(),
        })
    }

    /// Computes a summary of integer samples.
    pub fn of_counts(samples: &[u64]) -> Option<Self> {
        let floats: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Self::of(&floats)
    }
}

/// Nearest-rank percentile of a pre-sorted slice, `q` in `[0, 1]`.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[4.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 4.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn known_percentiles() {
        let samples: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let s = Summary::of(&samples).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p50 - 51.0).abs() <= 1.0);
        assert!((s.p99 - 99.0).abs() <= 1.0);
    }

    #[test]
    fn unsorted_input_handled() {
        let s = Summary::of(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
    }

    #[test]
    fn counts_variant() {
        let s = Summary::of_counts(&[2, 4, 6]).unwrap();
        assert!((s.mean - 4.0).abs() < 1e-12);
    }
}
