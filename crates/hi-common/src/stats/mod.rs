//! A small, dependency-free statistics toolkit.
//!
//! The paper's §4.3 validates history independence empirically: balance
//! elements are recorded over many runs, a χ² goodness-of-fit test is run per
//! candidate set, and the resulting p-values are themselves χ²-tested against
//! a uniform distribution. Reproducing that experiment (and writing
//! *statistical* unit tests for the reservoir sampler, the capacity rule and
//! the layout distribution of whole structures) requires:
//!
//! * [`gamma`] — log-gamma and the regularized incomplete gamma functions;
//! * [`chi2`] — the χ² statistic, its survival function and a goodness-of-fit
//!   helper returning a p-value;
//! * [`uniformity`] — convenience harnesses for "are these discrete samples
//!   uniform?" and the paper's two-level p-value-of-p-values test;
//! * [`summary`] — mean/percentile summaries used by the I/O-distribution
//!   experiments (Lemma 15's tail comparison).

pub mod chi2;
pub mod gamma;
pub mod summary;
pub mod uniformity;

pub use chi2::{chi2_gof_uniform, chi2_statistic_uniform, chi2_survival, Chi2Outcome};
pub use gamma::{ln_gamma, reg_gamma_lower, reg_gamma_upper};
pub use summary::Summary;
pub use uniformity::{uniformity_of_p_values, uniformity_p_value, UniformityReport};
