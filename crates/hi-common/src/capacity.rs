//! The weakly history-independent dynamic-array capacity rule.
//!
//! Paper §2.1 (following Hartline et al.): a weakly history-independent
//! dynamic array storing `n` elements keeps its *capacity parameter*
//! `N̂` **uniformly distributed over `{n, …, 2n−1}`**, and resizes with
//! probability `Θ(1/N̂)` after each insert or delete. The PMA (paper §3.3)
//! reuses exactly this rule to pick its own size parameter `N̂`, from which
//! the slot count `N_S` is derived; the external-memory skip list reuses it
//! for its array sizes (Invariant 16 generalizes it with a lower bound).
//!
//! [`HiCapacity`] maintains the invariant *exactly* (not just asymptotically):
//! after every update the capacity parameter is uniform over the fresh range,
//! and the probability that an update forces a rebuild is `O(1/n)`, giving
//! `O(1)` amortized rebuild work. The incremental transition rule and the
//! proof sketch are documented on [`HiCapacity::on_insert`] and
//! [`HiCapacity::on_delete`].
//!
//! [`ShiCanonicalCapacity`] is the strongly-history-independent strawman used
//! by Observation 1: a canonical (deterministic) capacity per `n`. The
//! alternating adversary of Observation 1 forces it into an `Ω(n)` resize on
//! every operation; benchmark `obs1_shi_vs_whi` demonstrates the separation.

use rand::Rng;

/// Outcome of notifying a capacity rule about an insert or delete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityEvent {
    /// The capacity parameter is unchanged; the caller keeps its layout.
    Unchanged,
    /// The capacity parameter changed; the caller must rebuild its layout
    /// from scratch using the new parameter.
    Rebuild {
        /// The new capacity parameter `N̂`.
        new_n_hat: usize,
    },
}

impl CapacityEvent {
    /// Returns `true` when the event requires a rebuild.
    pub fn is_rebuild(&self) -> bool {
        matches!(self, CapacityEvent::Rebuild { .. })
    }
}

/// Weakly history-independent capacity parameter `N̂ ∈ {n, …, 2n−1}`.
///
/// # Examples
///
/// ```
/// use hi_common::capacity::HiCapacity;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut cap = HiCapacity::new();
/// for _ in 0..100 {
///     cap.on_insert(&mut rng);
/// }
/// assert_eq!(cap.len(), 100);
/// assert!(cap.n_hat() >= 100 && cap.n_hat() <= 199);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HiCapacity {
    n: usize,
    n_hat: usize,
}

impl HiCapacity {
    /// Creates an empty capacity tracker (`n = 0`, `N̂ = 0`).
    pub fn new() -> Self {
        Self { n: 0, n_hat: 0 }
    }

    /// Creates a tracker for `n` pre-existing elements, drawing `N̂`
    /// uniformly from `{n, …, 2n−1}`.
    pub fn with_len<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let n_hat = if n == 0 { 0 } else { rng.gen_range(n..2 * n) };
        Self { n, n_hat }
    }

    /// Number of elements currently tracked.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` when no elements are tracked.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current capacity parameter `N̂` (0 when empty).
    pub fn n_hat(&self) -> usize {
        self.n_hat
    }

    /// Re-draws `N̂` uniformly from the current legal range.
    ///
    /// Used when the owning structure rebuilds for an unrelated reason and
    /// wants fresh randomness; re-drawing from the same distribution
    /// preserves the invariant trivially.
    pub fn redraw<R: Rng + ?Sized>(&mut self, rng: &mut R) -> CapacityEvent {
        if self.n == 0 {
            self.n_hat = 0;
            return CapacityEvent::Rebuild { new_n_hat: 0 };
        }
        self.n_hat = rng.gen_range(self.n..2 * self.n);
        CapacityEvent::Rebuild {
            new_n_hat: self.n_hat,
        }
    }

    /// Registers an insert (`n → n+1`) and reports whether a rebuild is due.
    ///
    /// Transition rule (`n` is the count *before* the insert, `n' = n+1`):
    ///
    /// * `n = 0`: the only legal value is `N̂ = 1`; rebuild.
    /// * `N̂ = n` (now below the legal range): rebuild with `N̂` uniform over
    ///   `{n', …, 2n'−1}`.
    /// * otherwise, with probability `2/n'` rebuild with `N̂` uniform over the
    ///   two newly legal top values `{2n'−2, 2n'−1}`; with the remaining
    ///   probability keep `N̂`.
    ///
    /// A short calculation shows every value of `{n', …, 2n'−1}` ends up with
    /// probability exactly `1/n'`, so the invariant is maintained exactly; the
    /// rebuild probability is at most `1/n + 2/(n+1) = O(1/n)`.
    pub fn on_insert<R: Rng + ?Sized>(&mut self, rng: &mut R) -> CapacityEvent {
        let n_new = self.n + 1;
        let event = if self.n == 0 {
            self.n_hat = 1;
            CapacityEvent::Rebuild { new_n_hat: 1 }
        } else if self.n_hat < n_new {
            // Forced: the old value fell out of the legal range.
            self.n_hat = rng.gen_range(n_new..2 * n_new);
            CapacityEvent::Rebuild {
                new_n_hat: self.n_hat,
            }
        } else if rng.gen_range(0..n_new) < 2 {
            // Lottery: move to one of the two newly legal top values.
            self.n_hat = 2 * n_new - 2 + rng.gen_range(0..2usize);
            CapacityEvent::Rebuild {
                new_n_hat: self.n_hat,
            }
        } else {
            CapacityEvent::Unchanged
        };
        self.n = n_new;
        event
    }

    /// Registers a delete (`n → n−1`) and reports whether a rebuild is due.
    ///
    /// Transition rule (`n` is the count *before* the delete, `n' = n−1`):
    ///
    /// * `n = 1`: the structure becomes empty; `N̂ = 0`.
    /// * `N̂ > 2n'−1` (now above the legal range): rebuild with `N̂` uniform
    ///   over `{n', …, 2n'−1}`.
    /// * otherwise, with probability `1/n'` rebuild with `N̂ = n'` (the newly
    ///   legal bottom value); with the remaining probability keep `N̂`.
    ///
    /// As with inserts, every value of the new range ends up with probability
    /// exactly `1/n'`.
    ///
    /// # Panics
    ///
    /// Panics if called on an empty tracker.
    pub fn on_delete<R: Rng + ?Sized>(&mut self, rng: &mut R) -> CapacityEvent {
        assert!(self.n > 0, "on_delete called on an empty HiCapacity");
        let n_new = self.n - 1;
        let event = if n_new == 0 {
            self.n_hat = 0;
            CapacityEvent::Rebuild { new_n_hat: 0 }
        } else if self.n_hat > 2 * n_new - 1 {
            self.n_hat = rng.gen_range(n_new..2 * n_new);
            CapacityEvent::Rebuild {
                new_n_hat: self.n_hat,
            }
        } else if rng.gen_range(0..n_new) == 0 {
            self.n_hat = n_new;
            CapacityEvent::Rebuild {
                new_n_hat: self.n_hat,
            }
        } else {
            CapacityEvent::Unchanged
        };
        self.n = n_new;
        event
    }
}

impl Default for HiCapacity {
    fn default() -> Self {
        Self::new()
    }
}

/// Strongly-history-independent (canonical) capacity rule — the Observation 1
/// strawman.
///
/// The capacity of an `n`-element array is the canonical value
/// `2^⌈log₂(n+1)⌉` (smallest power of two that keeps the array at most 50%
/// full is *not* required here; any fixed canonical function exhibits the
/// same lower bound). Every time the canonical value changes the array must
/// be rebuilt, so an adversary alternating inserts and deletes across a
/// power-of-two boundary forces an `Ω(n)`-cost rebuild on every operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShiCanonicalCapacity {
    n: usize,
}

impl ShiCanonicalCapacity {
    /// Creates an empty canonical-capacity tracker.
    pub fn new() -> Self {
        Self { n: 0 }
    }

    /// Creates a tracker for `n` pre-existing elements.
    pub fn with_len(n: usize) -> Self {
        Self { n }
    }

    /// Number of elements currently tracked.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` when no elements are tracked.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The canonical capacity for the current element count.
    pub fn capacity(&self) -> usize {
        Self::canonical(self.n)
    }

    /// The canonical capacity for `n` elements.
    pub fn canonical(n: usize) -> usize {
        if n == 0 {
            0
        } else {
            n.next_power_of_two()
        }
    }

    /// Registers an insert; returns a rebuild event when the canonical
    /// capacity changes.
    pub fn on_insert(&mut self) -> CapacityEvent {
        let before = self.capacity();
        self.n += 1;
        let after = self.capacity();
        if before == after {
            CapacityEvent::Unchanged
        } else {
            CapacityEvent::Rebuild { new_n_hat: after }
        }
    }

    /// Registers a delete; returns a rebuild event when the canonical
    /// capacity changes.
    ///
    /// # Panics
    ///
    /// Panics if called on an empty tracker.
    pub fn on_delete(&mut self) -> CapacityEvent {
        assert!(self.n > 0, "on_delete called on an empty tracker");
        let before = self.capacity();
        self.n -= 1;
        let after = self.capacity();
        if before == after {
            CapacityEvent::Unchanged
        } else {
            CapacityEvent::Rebuild { new_n_hat: after }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn starts_empty() {
        let cap = HiCapacity::new();
        assert_eq!(cap.len(), 0);
        assert_eq!(cap.n_hat(), 0);
        assert!(cap.is_empty());
    }

    #[test]
    fn first_insert_forces_one() {
        let mut cap = HiCapacity::new();
        let ev = cap.on_insert(&mut rng(0));
        assert_eq!(ev, CapacityEvent::Rebuild { new_n_hat: 1 });
        assert_eq!(cap.len(), 1);
        assert_eq!(cap.n_hat(), 1);
    }

    #[test]
    fn invariant_holds_under_random_ops() {
        let mut r = rng(3);
        let mut cap = HiCapacity::new();
        for step in 0..20_000u32 {
            let insert = cap.is_empty() || (step % 3 != 0);
            if insert {
                cap.on_insert(&mut r);
            } else {
                cap.on_delete(&mut r);
            }
            if !cap.is_empty() {
                assert!(cap.n_hat() >= cap.len(), "n_hat below range");
                assert!(cap.n_hat() < 2 * cap.len(), "n_hat above range");
            } else {
                assert_eq!(cap.n_hat(), 0);
            }
        }
    }

    #[test]
    fn delete_to_empty_resets() {
        let mut r = rng(5);
        let mut cap = HiCapacity::new();
        cap.on_insert(&mut r);
        let ev = cap.on_delete(&mut r);
        assert_eq!(ev, CapacityEvent::Rebuild { new_n_hat: 0 });
        assert!(cap.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn delete_on_empty_panics() {
        let mut r = rng(5);
        HiCapacity::new().on_delete(&mut r);
    }

    #[test]
    fn rebuild_probability_is_low() {
        // With n around 1000, per-op rebuild probability should be ~3/n.
        let mut r = rng(11);
        let mut cap = HiCapacity::new();
        for _ in 0..1000 {
            cap.on_insert(&mut r);
        }
        let mut rebuilds = 0usize;
        let trials = 20_000usize;
        for i in 0..trials {
            let ev = if i % 2 == 0 {
                cap.on_insert(&mut r)
            } else {
                cap.on_delete(&mut r)
            };
            if ev.is_rebuild() {
                rebuilds += 1;
            }
        }
        // Expectation is roughly trials * 3/1000 = 60; allow generous slack.
        assert!(rebuilds < 300, "too many rebuilds: {rebuilds}");
    }

    #[test]
    fn n_hat_distribution_is_uniform() {
        // Build to n = 8 many times with i.i.d. randomness and χ²-test the
        // resulting N̂ against uniform over {8..15}.
        let n = 8usize;
        let trials = 16_000usize;
        let mut counts = vec![0usize; n];
        for t in 0..trials {
            let mut r = rng(1_000 + t as u64);
            let mut cap = HiCapacity::new();
            for _ in 0..n {
                cap.on_insert(&mut r);
            }
            counts[cap.n_hat() - n] += 1;
        }
        let expected = trials as f64 / n as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 7 degrees of freedom; the 99.9% quantile is ~24.3.
        assert!(chi2 < 24.3, "chi2 = {chi2}, counts = {counts:?}");
    }

    #[test]
    fn n_hat_distribution_uniform_after_mixed_ops() {
        // Same test but reaching n = 6 via a mixed insert/delete history.
        let n = 6usize;
        let trials = 12_000usize;
        let mut counts = vec![0usize; n];
        for t in 0..trials {
            let mut r = rng(7_000 + t as u64);
            let mut cap = HiCapacity::new();
            for _ in 0..10 {
                cap.on_insert(&mut r);
            }
            for _ in 0..4 {
                cap.on_delete(&mut r);
            }
            counts[cap.n_hat() - n] += 1;
        }
        let expected = trials as f64 / n as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 5 degrees of freedom; 99.9% quantile ~20.5.
        assert!(chi2 < 20.5, "chi2 = {chi2}, counts = {counts:?}");
    }

    #[test]
    fn with_len_draws_in_range() {
        let mut r = rng(2);
        for n in 1..200usize {
            let cap = HiCapacity::with_len(n, &mut r);
            assert!(cap.n_hat() >= n && cap.n_hat() < 2 * n);
        }
    }

    #[test]
    fn canonical_capacity_values() {
        assert_eq!(ShiCanonicalCapacity::canonical(0), 0);
        assert_eq!(ShiCanonicalCapacity::canonical(1), 1);
        assert_eq!(ShiCanonicalCapacity::canonical(2), 2);
        assert_eq!(ShiCanonicalCapacity::canonical(3), 4);
        assert_eq!(ShiCanonicalCapacity::canonical(5), 8);
        assert_eq!(ShiCanonicalCapacity::canonical(1025), 2048);
    }

    #[test]
    fn canonical_adversary_forces_rebuilds() {
        // Alternate across the 1024/1025 boundary: every op rebuilds.
        let mut cap = ShiCanonicalCapacity::with_len(1024);
        let mut rebuilds = 0;
        for i in 0..100 {
            let ev = if i % 2 == 0 {
                cap.on_insert()
            } else {
                cap.on_delete()
            };
            if ev.is_rebuild() {
                rebuilds += 1;
            }
        }
        assert_eq!(rebuilds, 100);
    }

    #[test]
    fn redraw_stays_in_range() {
        let mut r = rng(4);
        let mut cap = HiCapacity::with_len(100, &mut r);
        for _ in 0..100 {
            cap.redraw(&mut r);
            assert!(cap.n_hat() >= 100 && cap.n_hat() < 200);
        }
    }
}
