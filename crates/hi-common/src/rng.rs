//! Deterministic random-number plumbing.
//!
//! Every randomized structure in the workspace takes an [`RngSource`] at
//! construction time. The source is seeded once and can be *split* into
//! independent streams, so a composite structure (e.g. the cache-oblivious
//! B-tree, which owns a PMA, a rank tree and a value tree) can hand an
//! independent stream to each component without the components' draws
//! interleaving in history-dependent ways.
//!
//! The weak-history-independence analyses in the paper assume the observer
//! never sees the data structure's coin flips (paper §2.3, "oblivious
//! observer"). Determinism here is purely an engineering property: with a
//! fixed seed, a test or benchmark run is reproducible, while different seeds
//! model the secret randomness of a deployment.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The concrete RNG used throughout the workspace.
///
/// `StdRng` (currently ChaCha12) is deliberately chosen over a small
/// non-cryptographic generator: history independence is a security property,
/// and the layout distribution should not be predictable from a handful of
/// observed outputs.
pub type DetRng = StdRng;

/// A seedable, splittable source of randomness.
///
/// # Examples
///
/// ```
/// use hi_common::rng::RngSource;
/// use rand::Rng;
///
/// let mut source = RngSource::from_seed(42);
/// let mut a = source.split("component-a");
/// let mut b = source.split("component-b");
/// // Independent streams: drawing from `a` does not perturb `b`.
/// let x: u64 = a.gen();
/// let y: u64 = b.gen();
/// assert_ne!(x, y);
/// ```
#[derive(Debug, Clone)]
pub struct RngSource {
    seed: u64,
    rng: DetRng,
}

impl RngSource {
    /// Creates a source from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            seed,
            rng: DetRng::seed_from_u64(seed),
        }
    }

    /// Creates a source from operating-system entropy.
    ///
    /// Use this in production settings where reproducibility is not desired;
    /// the WHI guarantees require the seed to be unknown to the observer.
    pub fn from_entropy() -> Self {
        // hi-lint: allow(entropy): the one production entropy intake — WHI needs a seed the observer cannot know; everything downstream is a pure function of it
        let seed = rand::rngs::OsRng.next_u64();
        Self::from_seed(seed)
    }

    /// Returns the seed this source was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent RNG stream labelled by `label`.
    ///
    /// The stream is a pure function of `(seed, label)` plus the number of
    /// previous anonymous draws, so two components that split with different
    /// labels never share randomness.
    pub fn split(&mut self, label: &str) -> DetRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let fresh: u64 = self.rng.gen();
        DetRng::seed_from_u64(self.seed ^ h ^ fresh.rotate_left(17))
    }

    /// Derives an independent RNG stream without a label.
    pub fn split_anonymous(&mut self) -> DetRng {
        let fresh: u64 = self.rng.gen();
        DetRng::seed_from_u64(fresh)
    }

    /// Draws directly from the underlying stream.
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }
}

impl Default for RngSource {
    fn default() -> Self {
        // hi-lint: allow(entropy): the safe default is the adversary-unknown seed; deterministic runs must opt in with from_seed
        Self::from_entropy()
    }
}

/// Draws a value uniformly from `0..n`, returning 0 when `n == 0`.
///
/// Small convenience used in several candidate-set computations where an
/// empty range can legitimately occur during start-up.
pub fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: usize) -> usize {
    if n == 0 {
        0
    } else {
        rng.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = RngSource::from_seed(7);
        let mut b = RngSource::from_seed(7);
        let xs: Vec<u64> = (0..16).map(|_| a.rng().gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.rng().gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_labels_different_streams() {
        let mut src = RngSource::from_seed(7);
        let mut a = src.split("a");
        let mut src2 = RngSource::from_seed(7);
        let mut b = src2.split("b");
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn split_is_reproducible() {
        let mut a = RngSource::from_seed(99);
        let mut b = RngSource::from_seed(99);
        let mut ra = a.split("pma");
        let mut rb = b.split("pma");
        assert_eq!(ra.gen::<u64>(), rb.gen::<u64>());
    }

    #[test]
    fn uniform_below_zero_is_zero() {
        let mut rng = DetRng::seed_from_u64(1);
        assert_eq!(uniform_below(&mut rng, 0), 0);
    }

    #[test]
    fn uniform_below_in_range() {
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = uniform_below(&mut rng, 10);
            assert!(v < 10);
        }
    }

    #[test]
    fn entropy_sources_differ() {
        // Overwhelmingly likely to differ; failure would indicate a broken
        // OsRng shim rather than bad luck.
        let a = RngSource::from_entropy();
        let b = RngSource::from_entropy();
        assert_ne!(a.seed(), b.seed());
    }
}
