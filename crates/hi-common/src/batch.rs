//! Group-commit batch updates: one locate pass + one replay pass + one
//! rebalance per touched window.
//!
//! A history-independent structure's layout is a pure function of
//! *(contents, coins)*, and its coins are drawn in a canonical per-operation
//! order. A batch of updates therefore cannot reorder the *decisions* — the
//! capacity events, the reservoir lotteries, the balance draws must happen
//! exactly as if the operations were applied one at a time — but it is free
//! to defer every *element move* until the decisions are in, and then touch
//! each affected region of the backing array once.
//!
//! [`apply_keyed_batch`] is the engine-independent driver that turns a batch
//! of keyed operations ([`BatchOp`]) into rank-addressed splices against any
//! [`RankedSequence`] of key–value pairs kept in ascending key order:
//!
//! 1. **Locate** (read-only): the distinct keys are visited in ascending
//!    order and resolved to their lower-bound ranks with a single shared
//!    left-to-right descent — a [`SeekFinger`] resumes from the previous
//!    key's leaf instead of restarting at the root
//!    ([`RankedSequence::lower_bound_seek_by`]).
//! 2. **Replay** (arrival order): every operation is translated to the rank
//!    it would apply at mid-batch — the located rank plus the net number of
//!    earlier batch inserts/deletes below its key, maintained in a Fenwick
//!    tree over the distinct keys — and handed to the engine's
//!    [`RankedSequence::batch_insert_at`] / [`RankedSequence::batch_delete_at`],
//!    which draw exactly the per-op coins and defer the data movement.
//!    An overwrite of a present key replays as delete + reinsert at the same
//!    rank, precisely what [`RankedDict::insert`](crate::traits::RankedDict)
//!    does per-op.
//! 3. **Commit**: [`RankedSequence::batch_commit`] executes one
//!    merge-rebalance per touched window.
//!
//! The provided defaults on [`RankedSequence`] apply each splice
//! immediately, so the driver is *bit-identical* to the per-op loop for
//! every engine; engines with a deferred implementation (the PMAs) stay
//! bit-identical by construction because the replay draws the same coins in
//! the same order.

use crate::traits::RankedSequence;

/// One keyed operation of a batch: an upsert or a removal.
///
/// A batch is an ordered sequence of these; duplicates are allowed and mean
/// exactly what the per-op loop would do (later writes win, a remove after a
/// put deletes the freshly written key, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp<K, V> {
    /// Insert or overwrite `key` with `value`.
    Put(K, V),
    /// Remove `key` if present.
    Remove(K),
}

impl<K, V> BatchOp<K, V> {
    /// The key the operation addresses.
    pub fn key(&self) -> &K {
        match self {
            BatchOp::Put(k, _) => k,
            BatchOp::Remove(k) => k,
        }
    }

    /// Returns `true` for [`BatchOp::Put`].
    pub fn is_put(&self) -> bool {
        matches!(self, BatchOp::Put(..))
    }
}

/// A resumable position for ascending ordered probes.
///
/// Engines interpret the fields themselves (`group` is a leaf/segment index,
/// `base_rank` the rank of its first element). A finger is only meaningful
/// between mutations: create a fresh one per read-only probe run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeekFinger {
    /// Engine-defined group (leaf / segment) the previous probe landed in.
    pub group: usize,
    /// Rank of the first element of that group at probe time.
    pub base_rank: usize,
    /// Whether the finger holds a position at all.
    pub valid: bool,
}

impl SeekFinger {
    /// A fresh, invalid finger.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A Fenwick (binary-indexed) tree over signed per-key deltas, used by the
/// batch driver to answer "net inserts minus deletes among keys strictly
/// below this one" in `O(log d)`.
#[derive(Debug, Clone, Default)]
pub struct SignedFenwick {
    tree: Vec<i64>,
}

impl SignedFenwick {
    /// A tree over `n` zeroed slots.
    pub fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    /// Clears and resizes to `n` slots, keeping the allocation when possible.
    pub fn reset(&mut self, n: usize) {
        self.tree.clear();
        self.tree.resize(n + 1, 0);
    }

    /// Adds `delta` at `index`.
    pub fn add(&mut self, index: usize, delta: i64) {
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of deltas in `[0, index)`.
    pub fn prefix(&self, index: usize) -> i64 {
        let mut i = index.min(self.tree.len().saturating_sub(1));
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

/// Applies a batch of keyed operations to a key-sorted [`RankedSequence`] of
/// pairs, bit-identically to applying them one at a time in arrival order
/// (insert = lower bound + splice, overwrite = delete + reinsert at the same
/// rank, remove-miss = no-op). Returns the number of removes that found
/// their key.
///
/// Engines that implement the deferred batch surface
/// ([`RankedSequence::batch_insert_at`] and friends) execute one
/// merge-rebalance per touched window; for everything else the provided
/// defaults degrade to the per-op loop.
pub fn apply_keyed_batch<S, K, V>(seq: &mut S, ops: Vec<BatchOp<K, V>>) -> usize
where
    S: RankedSequence<Item = (K, V)>,
    K: Ord + Clone,
    V: Clone,
{
    if ops.is_empty() {
        return 0;
    }
    // Sort a permutation of the op indices by key (stable, so equal keys
    // keep arrival order) and collapse it into the distinct ascending keys.
    let mut order: Vec<u32> = (0..ops.len() as u32).collect();
    order.sort_by(|&a, &b| ops[a as usize].key().cmp(ops[b as usize].key()));
    let mut key_idx: Vec<u32> = vec![0; ops.len()];
    // Locate phase: one shared left-to-right descent over the distinct keys.
    let mut ranks: Vec<usize> = Vec::with_capacity(ops.len());
    let mut present: Vec<bool> = Vec::with_capacity(ops.len());
    {
        let mut finger = SeekFinger::new();
        let mut prev: Option<&K> = None;
        for &oi in &order {
            let key = ops[oi as usize].key();
            if prev != Some(key) {
                let (rank, probe) = seq.lower_bound_seek_by(&mut finger, |pair| pair.0.cmp(key));
                ranks.push(rank);
                present.push(matches!(probe, Some((k, _)) if k == key));
                prev = Some(key);
            }
            key_idx[oi as usize] = (ranks.len() - 1) as u32;
        }
    }
    // Replay phase, in arrival order. The rank a key's operation applies at
    // mid-batch is its located rank plus the net number of earlier batch
    // inserts (minus deletes) of strictly smaller keys.
    let mut deltas = SignedFenwick::new(ranks.len());
    let mut removed = 0usize;
    seq.batch_begin();
    for (i, op) in ops.into_iter().enumerate() {
        let j = key_idx[i] as usize;
        let rank = (ranks[j] as i64 + deltas.prefix(j)) as usize;
        match op {
            BatchOp::Put(k, v) => {
                if present[j] {
                    // Overwrite: delete + reinsert at the same rank, exactly
                    // as the keyed adapters do per-op.
                    seq.batch_delete_at(rank);
                    seq.batch_insert_at(rank, (k, v));
                } else {
                    seq.batch_insert_at(rank, (k, v));
                    deltas.add(j, 1);
                    present[j] = true;
                }
            }
            BatchOp::Remove(_) => {
                if present[j] {
                    seq.batch_delete_at(rank);
                    deltas.add(j, -1);
                    present[j] = false;
                    removed += 1;
                }
                // A remove of an absent key is a pure miss: the per-op path
                // draws no coins and changes nothing, so neither do we.
            }
        }
    }
    seq.batch_commit();
    removed
}

/// Looks up every key of `keys` against a key-sorted [`RankedSequence`] of
/// pairs, returning cloned values in input order: the probes are sorted and
/// served by one resumable [`SeekFinger`], and the original order is
/// restored through the index permutation. `on_probe` fires once per key
/// (the keyed adapters hook their query counters in).
pub fn get_many_keyed<S, K, V>(seq: &S, keys: &[K], mut on_probe: impl FnMut()) -> Vec<Option<V>>
where
    S: RankedSequence<Item = (K, V)>,
    K: Ord + Clone,
    V: Clone,
{
    let mut order: Vec<u32> = (0..keys.len() as u32).collect();
    order.sort_by(|&a, &b| keys[a as usize].cmp(&keys[b as usize]));
    let mut out: Vec<Option<V>> = (0..keys.len()).map(|_| None).collect();
    let mut finger = SeekFinger::new();
    for &i in &order {
        let key = &keys[i as usize];
        on_probe();
        let (_, probe) = seq.lower_bound_seek_by(&mut finger, |pair| pair.0.cmp(key));
        out[i as usize] = match probe {
            Some((k, v)) if k == key => Some(v.clone()),
            _ => None,
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::RankError;

    /// Trivial Vec-backed pair sequence (defaults = per-op application).
    struct PairSeq(Vec<(u64, u64)>);

    impl RankedSequence for PairSeq {
        type Item = (u64, u64);

        fn len(&self) -> usize {
            self.0.len()
        }

        fn insert_at(&mut self, rank: usize, item: (u64, u64)) -> Result<(), RankError> {
            if rank > self.0.len() {
                return Err(RankError {
                    rank,
                    len: self.0.len(),
                });
            }
            self.0.insert(rank, item);
            Ok(())
        }

        fn delete_at(&mut self, rank: usize) -> Result<(u64, u64), RankError> {
            if rank >= self.0.len() {
                return Err(RankError {
                    rank,
                    len: self.0.len(),
                });
            }
            Ok(self.0.remove(rank))
        }

        fn get_ref(&self, rank: usize) -> Option<&(u64, u64)> {
            self.0.get(rank)
        }

        fn range_iter(
            &self,
            i: usize,
            j: usize,
        ) -> Result<impl Iterator<Item = &(u64, u64)>, RankError> {
            if i > j {
                return Ok(self.0[0..0].iter());
            }
            if j >= self.0.len() {
                return Err(RankError {
                    rank: j,
                    len: self.0.len(),
                });
            }
            Ok(self.0[i..=j].iter())
        }
    }

    #[test]
    fn batch_matches_per_op_loop() {
        let ops: Vec<BatchOp<u64, u64>> = vec![
            BatchOp::Put(5, 50),
            BatchOp::Put(1, 10),
            BatchOp::Put(5, 55),
            BatchOp::Remove(9),
            BatchOp::Put(9, 90),
            BatchOp::Remove(1),
            BatchOp::Put(3, 30),
            BatchOp::Remove(3),
            BatchOp::Put(3, 33),
        ];
        let mut seq = PairSeq(vec![(2, 20), (9, 99)]);
        let removed = apply_keyed_batch(&mut seq, ops);
        assert_eq!(removed, 3);
        assert_eq!(seq.0, vec![(2, 20), (3, 33), (5, 55), (9, 90)]);
    }

    #[test]
    fn signed_fenwick_prefix_sums() {
        let mut f = SignedFenwick::new(5);
        f.add(0, 1);
        f.add(3, -2);
        f.add(3, 1);
        assert_eq!(f.prefix(0), 0);
        assert_eq!(f.prefix(1), 1);
        assert_eq!(f.prefix(3), 1);
        assert_eq!(f.prefix(4), 0);
        assert_eq!(f.prefix(5), 0);
        f.reset(2);
        assert_eq!(f.prefix(2), 0);
    }
}
