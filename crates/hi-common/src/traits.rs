//! Core abstractions shared by every structure in the workspace.
//!
//! The paper works with two kinds of interfaces:
//!
//! * a **ranked sequence** (the PMA, paper §3): elements are addressed by
//!   *rank* — `Insert(i, x)`, `Delete(i)`, `Query(i, j)`;
//! * a **dictionary** (the cache-oblivious B-tree of §5, the skip lists of
//!   §6, and the baseline B-tree): elements are addressed by *key* —
//!   insert/delete/search/range-query.
//!
//! Defining these as traits lets the integration tests and benchmark
//! harnesses run the same workload against every structure and cross-check
//! the results, and lets downstream users swap a history-independent
//! dictionary for a conventional one without touching call sites.

use std::fmt;

/// Error returned by rank-addressed operations when the rank is out of range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankError {
    /// The offending rank.
    pub rank: usize,
    /// The number of elements at the time of the call.
    pub len: usize,
}

impl fmt::Display for RankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} out of bounds for length {}",
            self.rank, self.len
        )
    }
}

impl std::error::Error for RankError {}

/// A dynamic sequence addressed by rank, in the style of the paper's PMA API
/// (§3): `Query(i, j)`, `Insert(i, x)`, `Delete(i)`.
pub trait RankedSequence {
    /// Element type stored in the sequence.
    type Item: Clone;

    /// Number of elements currently stored.
    fn len(&self) -> usize;

    /// Returns `true` when the sequence is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `item` as the `rank`-th element (`0 ≤ rank ≤ len`). Elements
    /// with rank `rank..len` before the insert have rank `rank+1..len+1`
    /// afterwards.
    fn insert_at(&mut self, rank: usize, item: Self::Item) -> Result<(), RankError>;

    /// Deletes and returns the `rank`-th element (`0 ≤ rank < len`).
    fn delete_at(&mut self, rank: usize) -> Result<Self::Item, RankError>;

    /// Returns the `rank`-th element without removing it.
    fn get(&self, rank: usize) -> Option<Self::Item>;

    /// Returns the `i`-th through `j`-th elements inclusive
    /// (`0 ≤ i ≤ j < len`), the paper's `Query(i, j)`.
    fn query(&self, i: usize, j: usize) -> Result<Vec<Self::Item>, RankError>;

    /// Collects the whole sequence in rank order. Intended for tests and
    /// small examples; cost is `Θ(len)`.
    fn to_vec(&self) -> Vec<Self::Item> {
        if self.is_empty() {
            Vec::new()
        } else {
            self.query(0, self.len() - 1).expect("full range is valid")
        }
    }
}

/// A key–value pair, the unit stored by the dictionary structures.
pub type KeyValue<K, V> = (K, V);

/// An ordered dictionary: the external-memory B-tree interface the paper's
/// structures implement as history-independent alternatives.
pub trait Dictionary {
    /// Key type (totally ordered).
    type Key: Ord + Clone;
    /// Value type.
    type Value: Clone;

    /// Number of keys stored.
    fn len(&self) -> usize;

    /// Returns `true` when the dictionary is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a key–value pair. Returns the previous value if the key was
    /// already present (in which case the pair is replaced).
    fn insert(&mut self, key: Self::Key, value: Self::Value) -> Option<Self::Value>;

    /// Removes a key, returning its value if it was present.
    fn remove(&mut self, key: &Self::Key) -> Option<Self::Value>;

    /// Looks up a key.
    fn get(&self, key: &Self::Key) -> Option<Self::Value>;

    /// Returns `true` when the key is present.
    fn contains(&self, key: &Self::Key) -> bool {
        self.get(key).is_some()
    }

    /// Returns every pair with `low ≤ key ≤ high`, in ascending key order.
    fn range(&self, low: &Self::Key, high: &Self::Key) -> Vec<KeyValue<Self::Key, Self::Value>>;

    /// Returns the smallest key ≥ `key` together with its value.
    fn successor(&self, key: &Self::Key) -> Option<KeyValue<Self::Key, Self::Value>>;

    /// Returns the largest key ≤ `key` together with its value.
    fn predecessor(&self, key: &Self::Key) -> Option<KeyValue<Self::Key, Self::Value>>;

    /// Collects the whole dictionary in ascending key order. Intended for
    /// tests and small examples; cost is `Θ(len)`.
    fn to_sorted_vec(&self) -> Vec<KeyValue<Self::Key, Self::Value>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial `Vec`-backed ranked sequence used to exercise the trait's
    /// default methods (and reused as a reference model elsewhere).
    struct VecSeq(Vec<u32>);

    impl RankedSequence for VecSeq {
        type Item = u32;

        fn len(&self) -> usize {
            self.0.len()
        }

        fn insert_at(&mut self, rank: usize, item: u32) -> Result<(), RankError> {
            if rank > self.0.len() {
                return Err(RankError {
                    rank,
                    len: self.0.len(),
                });
            }
            self.0.insert(rank, item);
            Ok(())
        }

        fn delete_at(&mut self, rank: usize) -> Result<u32, RankError> {
            if rank >= self.0.len() {
                return Err(RankError {
                    rank,
                    len: self.0.len(),
                });
            }
            Ok(self.0.remove(rank))
        }

        fn get(&self, rank: usize) -> Option<u32> {
            self.0.get(rank).copied()
        }

        fn query(&self, i: usize, j: usize) -> Result<Vec<u32>, RankError> {
            if i > j || j >= self.0.len() {
                return Err(RankError {
                    rank: j,
                    len: self.0.len(),
                });
            }
            Ok(self.0[i..=j].to_vec())
        }
    }

    #[test]
    fn default_methods_work() {
        let mut s = VecSeq(vec![]);
        assert!(s.is_empty());
        s.insert_at(0, 5).unwrap();
        s.insert_at(1, 9).unwrap();
        s.insert_at(1, 7).unwrap();
        assert_eq!(s.to_vec(), vec![5, 7, 9]);
        assert_eq!(s.get(1), Some(7));
        assert_eq!(s.delete_at(0).unwrap(), 5);
        assert_eq!(s.to_vec(), vec![7, 9]);
    }

    #[test]
    fn rank_error_display() {
        let e = RankError { rank: 9, len: 3 };
        assert_eq!(e.to_string(), "rank 9 out of bounds for length 3");
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut s = VecSeq(vec![1, 2, 3]);
        assert!(s.insert_at(5, 0).is_err());
        assert!(s.delete_at(3).is_err());
        assert!(s.query(1, 3).is_err());
    }
}
