//! Core abstractions shared by every structure in the workspace.
//!
//! The paper works with two kinds of interfaces:
//!
//! * a **ranked sequence** (the PMA, paper §3): elements are addressed by
//!   *rank* — `Insert(i, x)`, `Delete(i)`, `Query(i, j)`;
//! * a **dictionary** (the cache-oblivious B-tree of §5, the skip lists of
//!   §6, and the baseline B-tree): elements are addressed by *key* —
//!   insert/delete/search/range-query.
//!
//! Defining these as traits lets the integration tests and benchmark
//! harnesses run the same workload against every structure and cross-check
//! the results, and lets downstream users swap a history-independent
//! dictionary for a conventional one without touching call sites.
//!
//! # Zero-copy query surface
//!
//! Both traits are organised around **borrowing** accessors: the required
//! methods hand out references (`get_ref`) and lazy iterators (`iter`,
//! `range_iter`), and the historical `Vec`-returning methods (`get`,
//! `range`, `query`, `to_sorted_vec`, …) are thin provided wrappers that
//! clone out of the lazy surface. Implementations therefore write the
//! allocation-free path once and get the convenience API for free, while
//! hot loops (benchmarks, servers) consume the iterators directly without
//! materialising a `Vec` per query.
//!
//! # Error contract for `Query(i, j)`
//!
//! Rank-addressed range queries distinguish two conditions uniformly across
//! every implementation:
//!
//! * **empty range** (`i > j`): not an error — the query returns no
//!   elements (`Ok` with an empty iterator/vector), mirroring how keyed
//!   `range(low, high)` treats `low > high`;
//! * **out of bounds** (`j ≥ len`): a [`RankError`] carrying the offending
//!   rank `j` and the current length.
//!
//! # Batch operations
//!
//! [`Dictionary::extend`] and [`Dictionary::bulk_load`] (and their
//! [`RankedSequence`] counterparts) load many elements at once.
//! `bulk_load(items, seed)` additionally **draws fresh coins** from `seed`:
//! a history-independent implementation rebuilds its entire layout from the
//! new randomness, so the resulting representation is a function of
//! *(contents, seed)* only — independent of the order the items arrive in
//! and of everything the structure did before. The provided defaults fall
//! back to element-at-a-time insertion, which preserves the same
//! distributional guarantee for WHI structures (their per-op coins already
//! make the layout history independent) at `O(n log² n)` instead of `O(n)`
//! cost.

use std::fmt;
use std::ops::{Bound, RangeBounds};

/// Error returned by rank-addressed operations when the rank is out of range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankError {
    /// The offending rank.
    pub rank: usize,
    /// The number of elements at the time of the call.
    pub len: usize,
}

impl fmt::Display for RankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} out of bounds for length {}",
            self.rank, self.len
        )
    }
}

impl std::error::Error for RankError {}

/// Clones the bounds of a `RangeBounds<K>` into owned [`Bound`]s, so a lazy
/// iterator can carry them past the borrow of the range expression itself.
pub fn cloned_bounds<K: Clone, R: RangeBounds<K>>(range: &R) -> (Bound<K>, Bound<K>) {
    (range.start_bound().cloned(), range.end_bound().cloned())
}

/// Returns `true` when `key` satisfies an owned end bound.
pub fn below_end_bound<K: Ord>(key: &K, end: &Bound<K>) -> bool {
    match end {
        Bound::Included(high) => key <= high,
        Bound::Excluded(high) => key < high,
        Bound::Unbounded => true,
    }
}

/// A dynamic sequence addressed by rank, in the style of the paper's PMA API
/// (§3): `Query(i, j)`, `Insert(i, x)`, `Delete(i)`.
pub trait RankedSequence {
    /// Element type stored in the sequence.
    type Item: Clone;

    /// Number of elements currently stored.
    fn len(&self) -> usize;

    /// Returns `true` when the sequence is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `item` as the `rank`-th element (`0 ≤ rank ≤ len`). Elements
    /// with rank `rank..len` before the insert have rank `rank+1..len+1`
    /// afterwards.
    fn insert_at(&mut self, rank: usize, item: Self::Item) -> Result<(), RankError>;

    /// Deletes and returns the `rank`-th element (`0 ≤ rank < len`).
    fn delete_at(&mut self, rank: usize) -> Result<Self::Item, RankError>;

    /// Borrows the `rank`-th element without copying it.
    fn get_ref(&self, rank: usize) -> Option<&Self::Item>;

    /// Rank of the first element `e` for which `f(e)` is not
    /// [`Less`](std::cmp::Ordering::Less), assuming the caller keeps the
    /// sequence sorted with respect to `f` (`len()` when every element
    /// compares `Less`).
    ///
    /// The provided default binary-searches over [`Self::get_ref`] —
    /// `O(log n)` probes, each potentially a full rank descent.
    /// Implementations with an internal search index override this with a
    /// single descent (the HI PMA routes it through its augmented value
    /// tree, the paper's §5 keyed search), which is what makes the
    /// [`RankedDict`] adapter's keyed operations competitive with native
    /// rank addressing.
    fn lower_bound_by<F>(&self, f: F) -> usize
    where
        F: Fn(&Self::Item) -> std::cmp::Ordering,
    {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            // hi-lint: allow(panic-surface): mid < len: the binary-search bounds maintain lo <= mid < hi <= len
            let probe = self.get_ref(mid).expect("mid < len");
            if f(probe) == std::cmp::Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// [`Self::lower_bound_by`] fused with a borrow of the element at the
    /// returned rank (`None` when the rank is `len()`), so keyed callers
    /// inspect the search result without paying a second rank descent.
    fn lower_bound_ref_by<F>(&self, f: F) -> (usize, Option<&Self::Item>)
    where
        F: Fn(&Self::Item) -> std::cmp::Ordering,
    {
        let rank = self.lower_bound_by(f);
        (rank, self.get_ref(rank))
    }

    /// [`Self::lower_bound_ref_by`] with a resumable
    /// [`SeekFinger`](crate::batch::SeekFinger): callers probing an
    /// *ascending* run of bounds pass the same finger so the search can
    /// resume from the previous probe's leaf instead of restarting at the
    /// root. The finger is only meaningful between mutations.
    ///
    /// The provided default ignores the finger; positional engines (the
    /// PMAs) override it with a left-to-right leaf walk.
    fn lower_bound_seek_by<F>(
        &self,
        finger: &mut crate::batch::SeekFinger,
        f: F,
    ) -> (usize, Option<&Self::Item>)
    where
        F: Fn(&Self::Item) -> std::cmp::Ordering,
    {
        let _ = finger;
        self.lower_bound_ref_by(f)
    }

    /// Opens a deferred batch of rank splices (see the [`crate::batch`]
    /// module). The provided defaults apply every splice immediately, so the
    /// batch surface behaves bit-identically to the per-op loop for any
    /// implementation; engines with a group-commit path override all four
    /// methods and defer the data movement to [`Self::batch_commit`].
    fn batch_begin(&mut self) {}

    /// Replays one insert of a deferred batch at the rank it applies at
    /// mid-batch. Coins (for randomized engines) are drawn exactly as
    /// [`Self::insert_at`] would draw them.
    fn batch_insert_at(&mut self, rank: usize, item: Self::Item) {
        self.insert_at(rank, item)
            // hi-lint: allow(panic-surface): batch replay contract: the engine recorded this rank as valid when the batch was built
            .expect("batch insert rank out of range");
    }

    /// Replays one delete of a deferred batch. The removed element is
    /// dropped (batch callers never consume it).
    fn batch_delete_at(&mut self, rank: usize) {
        self.delete_at(rank)
            // hi-lint: allow(panic-surface): batch replay contract: the engine recorded this rank as valid when the batch was built
            .expect("batch delete rank out of range");
    }

    /// Closes a deferred batch: executes one merge-rebalance per touched
    /// window and restores every invariant of the sequence.
    fn batch_commit(&mut self) {}

    /// Returns a clone of the `rank`-th element.
    fn get(&self, rank: usize) -> Option<Self::Item> {
        self.get_ref(rank).cloned()
    }

    /// Lazily yields the `i`-th through `j`-th elements inclusive without
    /// allocating — the zero-copy form of the paper's `Query(i, j)`.
    ///
    /// Per the uniform error contract: `i > j` yields an empty iterator
    /// (`Ok`), while `j ≥ len` (with `i ≤ j`) is a [`RankError`].
    fn range_iter(
        &self,
        i: usize,
        j: usize,
    ) -> Result<impl Iterator<Item = &Self::Item>, RankError>;

    /// Borrows every element in rank order.
    fn iter(&self) -> impl Iterator<Item = &Self::Item> {
        // The full range is always valid (empty sequences take the `i > j`
        // empty-range branch via `0 > len - 1 == usize::MAX` wrap-around
        // being avoided by the explicit guard below).
        let last = self.len().saturating_sub(1);
        self.range_iter(usize::from(self.is_empty()), last)
            // hi-lint: allow(panic-surface): empty sequences take the explicit empty-range branch; otherwise 0..len-1 is valid
            .expect("full range is valid")
    }

    /// Returns clones of the `i`-th through `j`-th elements inclusive, the
    /// paper's `Query(i, j)`. Provided wrapper over [`Self::range_iter`];
    /// follows the same error contract.
    fn query(&self, i: usize, j: usize) -> Result<Vec<Self::Item>, RankError> {
        Ok(self.range_iter(i, j)?.cloned().collect())
    }

    /// Collects the whole sequence in rank order. Intended for tests and
    /// small examples; cost is `Θ(len)`.
    fn to_vec(&self) -> Vec<Self::Item> {
        self.iter().cloned().collect()
    }

    /// Appends every item of `items` at the end of the sequence.
    fn extend_back(&mut self, items: impl IntoIterator<Item = Self::Item>) {
        for item in items {
            let len = self.len();
            self.insert_at(len, item)
                // hi-lint: allow(panic-surface): insert at rank == len is the always-valid append form
                .expect("insert at len is always valid");
        }
    }

    /// Replaces the entire contents with `items` (in the given rank order),
    /// drawing fresh coins from `seed` where the implementation is
    /// randomized.
    ///
    /// History-independent implementations override this so the resulting
    /// layout is a pure function of *(items, seed)* — same items and seed
    /// give a bit-identical layout no matter what the structure held before.
    /// The provided default drains the sequence and re-inserts one element
    /// at a time (ignoring `seed`), which is correct but `O(n log² n)`.
    fn bulk_load(&mut self, items: impl IntoIterator<Item = Self::Item>, seed: u64) {
        let _ = seed;
        while !self.is_empty() {
            let last = self.len() - 1;
            // hi-lint: allow(panic-surface): last = len - 1 under the !is_empty loop guard
            self.delete_at(last).expect("last rank is valid");
        }
        self.extend_back(items);
    }
}

/// A key–value pair, the unit stored by the dictionary structures.
pub type KeyValue<K, V> = (K, V);

/// A structure whose memory representation is (or embeds) a slot-occupancy
/// map — the fingerprint the history-independence definitions quantify over.
///
/// Implementations expose the packed [`bitmap`](crate::bitmap::Bitmap) words
/// directly, so the statistical tests and the secure-delete audits can
/// compare layouts without per-slot probing. The provided methods derive the
/// legacy representations from the words.
pub trait Occupancy {
    /// Number of slots in the backing array.
    fn slot_count(&self) -> usize;

    /// The packed occupancy words, 64 slots per `u64`, low bit = low slot.
    /// Bits at and beyond [`Self::slot_count`] are zero.
    fn occupancy_words(&self) -> &[u64];

    /// One `bool` per slot (the historical representation; allocates).
    fn occupancy(&self) -> Vec<bool> {
        let words = self.occupancy_words();
        (0..self.slot_count())
            .map(|i| words[i / 64] & (1u64 << (i % 64)) != 0)
            .collect()
    }

    /// Number of occupied slots, by popcount over the packed words.
    fn occupied_slots(&self) -> usize {
        self.occupancy_words()
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

/// An ordered dictionary: the external-memory B-tree interface the paper's
/// structures implement as history-independent alternatives.
///
/// Implementations provide the borrowing surface ([`Self::get_ref`],
/// [`Self::range_iter`]) plus the mutators and ordered navigation; the
/// owned/`Vec` convenience methods are provided wrappers.
pub trait Dictionary {
    /// Key type (totally ordered).
    type Key: Ord + Clone;
    /// Value type.
    type Value: Clone;

    /// Number of keys stored.
    fn len(&self) -> usize;

    /// Returns `true` when the dictionary is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a key–value pair. Returns the previous value if the key was
    /// already present (in which case the pair is replaced).
    fn insert(&mut self, key: Self::Key, value: Self::Value) -> Option<Self::Value>;

    /// Removes a key, returning its value if it was present.
    fn remove(&mut self, key: &Self::Key) -> Option<Self::Value>;

    /// Borrows the value stored under `key`, without copying it.
    fn get_ref(&self, key: &Self::Key) -> Option<&Self::Value>;

    /// Looks up a key, cloning the value. Provided wrapper over
    /// [`Self::get_ref`].
    fn get(&self, key: &Self::Key) -> Option<Self::Value> {
        self.get_ref(key).cloned()
    }

    /// Returns `true` when the key is present.
    fn contains(&self, key: &Self::Key) -> bool {
        self.get_ref(key).is_some()
    }

    /// Lazily yields every pair whose key lies in `range`, in ascending key
    /// order, without materialising a `Vec`. Accepts any range expression
    /// (`..`, `a..`, `a..=b`, `(Bound, Bound)`, …).
    fn range_iter<R: RangeBounds<Self::Key>>(
        &self,
        range: R,
    ) -> impl Iterator<Item = (&Self::Key, &Self::Value)>;

    /// Borrows every pair in ascending key order.
    fn iter(&self) -> impl Iterator<Item = (&Self::Key, &Self::Value)> {
        self.range_iter(..)
    }

    /// Borrows every key in ascending order.
    fn keys(&self) -> impl Iterator<Item = &Self::Key> {
        self.iter().map(|(k, _)| k)
    }

    /// Borrows every value in ascending key order.
    fn values(&self) -> impl Iterator<Item = &Self::Value> {
        self.iter().map(|(_, v)| v)
    }

    /// Returns every pair with `low ≤ key ≤ high`, in ascending key order.
    /// Provided wrapper over [`Self::range_iter`]; `low > high` yields an
    /// empty vector.
    fn range(&self, low: &Self::Key, high: &Self::Key) -> Vec<KeyValue<Self::Key, Self::Value>> {
        self.range_iter((Bound::Included(low), Bound::Included(high)))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Returns the smallest key ≥ `key` together with its value.
    fn successor(&self, key: &Self::Key) -> Option<KeyValue<Self::Key, Self::Value>>;

    /// Returns the largest key ≤ `key` together with its value.
    fn predecessor(&self, key: &Self::Key) -> Option<KeyValue<Self::Key, Self::Value>>;

    /// Collects the whole dictionary in ascending key order. Provided
    /// wrapper over [`Self::iter`]; cost is `Θ(len)`.
    fn to_sorted_vec(&self) -> Vec<KeyValue<Self::Key, Self::Value>> {
        self.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Inserts every pair of `pairs`, in order (later duplicates overwrite
    /// earlier ones, exactly as repeated [`Self::insert`] calls would).
    /// Routed through [`Self::apply_batch`] in bounded chunks, so engines
    /// with a group-commit batch path amortize descents and rebalances
    /// across each run while an arbitrarily large (or lazy) input keeps
    /// constant peak memory. Chunk boundaries are invisible in the result:
    /// `apply_batch` is bit-identical to the per-op loop, so any chunking
    /// of the same stream composes to the same state.
    fn extend(&mut self, pairs: impl IntoIterator<Item = KeyValue<Self::Key, Self::Value>>) {
        const EXTEND_CHUNK: usize = 1 << 16;
        let mut iter = pairs.into_iter();
        loop {
            let chunk: Vec<crate::batch::BatchOp<Self::Key, Self::Value>> = iter
                .by_ref()
                .take(EXTEND_CHUNK)
                .map(|(k, v)| crate::batch::BatchOp::Put(k, v))
                .collect();
            if chunk.is_empty() {
                return;
            }
            self.apply_batch(chunk);
        }
    }

    /// Applies a batch of keyed operations in arrival order, returning the
    /// number of removes that found their key. Semantically (and, for the
    /// history-independent engines, *bit-for-bit*) identical to the per-op
    /// loop — later duplicates win, an overwrite replays as the engine's
    /// usual replace, a remove-miss is a no-op — but implementations
    /// override it to pay one descent per operation and one rebalance per
    /// touched window instead of per element.
    fn apply_batch(&mut self, ops: Vec<crate::batch::BatchOp<Self::Key, Self::Value>>) -> usize {
        let mut removed = 0;
        for op in ops {
            match op {
                crate::batch::BatchOp::Put(k, v) => {
                    self.insert(k, v);
                }
                crate::batch::BatchOp::Remove(k) => {
                    if self.remove(&k).is_some() {
                        removed += 1;
                    }
                }
            }
        }
        removed
    }

    /// Looks up every key of `keys`, returning the values in input order.
    /// Implementations sort the probes internally and reuse a descent finger
    /// across consecutive keys, restoring the original order through an
    /// index permutation; the provided default is a plain per-key loop.
    fn get_many(&self, keys: &[Self::Key]) -> Vec<Option<Self::Value>> {
        keys.iter().map(|k| self.get(k)).collect()
    }

    /// Replaces the entire contents with `pairs`, drawing fresh coins from
    /// `seed` where the implementation is randomized.
    ///
    /// The input need not be sorted or deduplicated — implementations
    /// normalise it (last write wins for duplicate keys) precisely so that
    /// the resulting layout is a pure function of *(key set, values, seed)*,
    /// independent of arrival order. History-independent implementations
    /// override this with an `O(n)`/`O(n log n)` rebuild; the provided
    /// default drains and re-inserts (ignoring `seed`).
    fn bulk_load(
        &mut self,
        pairs: impl IntoIterator<Item = KeyValue<Self::Key, Self::Value>>,
        seed: u64,
    ) {
        let _ = seed;
        let keys: Vec<Self::Key> = self.keys().cloned().collect();
        for k in keys {
            self.remove(&k);
        }
        self.extend(pairs);
    }
}

/// Sorts `pairs` by key and deduplicates (last write wins), normalising an
/// arbitrary bulk-load input into canonical load order. Shared by every
/// [`Dictionary::bulk_load`] override.
pub fn normalize_pairs<K: Ord, V>(mut pairs: Vec<(K, V)>) -> Vec<(K, V)> {
    // The sort must be stable so duplicate keys stay in arrival order; the
    // forward pass below then overwrites each run's entry in place, leaving
    // the *last* arrival as the winner.
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out: Vec<(K, V)> = Vec::with_capacity(pairs.len());
    for pair in pairs {
        match out.last_mut() {
            Some(last) if last.0 == pair.0 => *last = pair,
            _ => out.push(pair),
        }
    }
    out
}

/// A keyed [`Dictionary`] view over any [`RankedSequence`] of key–value
/// pairs kept in ascending key order.
///
/// This is the paper's observation that a sparse table plus a search
/// structure *is* a dictionary, in adapter form: ranks are found by binary
/// search over the sequence (`O(log n)` [`RankedSequence::get_ref`] probes),
/// after which every operation delegates to the rank-addressed API. It is
/// how the two PMAs ([`HiPma`](https://docs.rs/pma), `ClassicPma`) join the
/// dictionary conformance suite and the runtime-selectable backend set
/// without bespoke wrappers.
#[derive(Debug, Clone)]
pub struct RankedDict<S, K, V> {
    seq: S,
    /// Keyed-operation ledger. Point lookups and ordered navigation (get,
    /// successor, predecessor) are counted here — the sequence only sees
    /// uncounted `get_ref` probes for them. Range queries are *not* counted
    /// here: they delegate to [`RankedSequence::range_iter`], whose
    /// implementations count the query themselves (sharing this ledger when
    /// built by the dictionary builder), and counting at both layers would
    /// double-book them.
    counters: crate::counters::SharedCounters,
    _pairs: std::marker::PhantomData<(K, V)>,
}

impl<S, K, V> RankedDict<S, K, V>
where
    S: RankedSequence<Item = (K, V)>,
    K: Ord + Clone,
    V: Clone,
{
    /// Wraps an empty (or key-sorted) ranked sequence.
    pub fn new(seq: S) -> Self {
        Self::with_counters(seq, crate::counters::SharedCounters::new())
    }

    /// Wraps a sequence and reports keyed queries into an existing ledger
    /// (typically the same one the sequence itself was built with).
    pub fn with_counters(seq: S, counters: crate::counters::SharedCounters) -> Self {
        Self {
            seq,
            counters,
            _pairs: std::marker::PhantomData,
        }
    }

    /// The underlying ranked sequence.
    pub fn seq(&self) -> &S {
        &self.seq
    }

    /// The keyed-operation ledger.
    pub fn counters(&self) -> &crate::counters::SharedCounters {
        &self.counters
    }

    /// Consumes the adapter, returning the underlying sequence.
    pub fn into_inner(self) -> S {
        self.seq
    }

    /// Rank of the first pair whose key is ≥ `key` (or `len` if none).
    /// One [`RankedSequence::lower_bound_by`] descent.
    fn lower_bound(&self, key: &K) -> usize {
        self.seq.lower_bound_by(|pair| pair.0.cmp(key))
    }

    /// Rank of the first pair whose key is > `key` (or `len` if none).
    /// `Equal` probes are mapped to `Less`, turning the lower-bound descent
    /// into an upper bound.
    fn upper_bound(&self, key: &K) -> usize {
        self.seq.lower_bound_by(|pair| match pair.0.cmp(key) {
            std::cmp::Ordering::Greater => std::cmp::Ordering::Greater,
            _ => std::cmp::Ordering::Less,
        })
    }

    fn start_rank(&self, start: &Bound<K>) -> usize {
        match start {
            Bound::Included(k) => self.lower_bound(k),
            Bound::Excluded(k) => self.upper_bound(k),
            Bound::Unbounded => 0,
        }
    }
}

impl<S, K, V> Dictionary for RankedDict<S, K, V>
where
    S: RankedSequence<Item = (K, V)>,
    K: Ord + Clone,
    V: Clone,
{
    type Key = K;
    type Value = V;

    fn len(&self) -> usize {
        self.seq.len()
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        let (rank, probe) = self.seq.lower_bound_ref_by(|pair| pair.0.cmp(&key));
        let hit = matches!(probe, Some((existing, _)) if *existing == key);
        if hit {
            // Overwrite as delete + reinsert at the same rank — the same
            // HI-preserving replace `CobBTree::insert` uses: the layout
            // distribution stays a function of the key set only, at the
            // cost of two rank updates for a value change.
            // hi-lint: allow(panic-surface): delete at the rank the probe just returned
            let (_, old) = self.seq.delete_at(rank).expect("rank just observed");
            self.seq
                .insert_at(rank, (key, value))
                // hi-lint: allow(panic-surface): reinsert at the rank the delete just vacated
                .expect("rank still valid");
            return Some(old);
        }
        self.seq
            .insert_at(rank, (key, value))
            // hi-lint: allow(panic-surface): lower_bound returns a rank <= len, the valid insertion range
            .expect("lower bound is a valid insertion rank");
        None
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        let (rank, probe) = self.seq.lower_bound_ref_by(|pair| pair.0.cmp(key));
        let hit = matches!(probe, Some((existing, _)) if existing == key);
        if hit {
            // hi-lint: allow(panic-surface): delete at the rank the probe just returned
            let (_, v) = self.seq.delete_at(rank).expect("rank just observed");
            Some(v)
        } else {
            None
        }
    }

    fn get_ref(&self, key: &K) -> Option<&V> {
        self.counters.add_query();
        let (_, probe) = self.seq.lower_bound_ref_by(|pair| pair.0.cmp(key));
        match probe {
            Some((existing, v)) if existing == key => Some(v),
            _ => None,
        }
    }

    fn range_iter<R: RangeBounds<K>>(&self, range: R) -> impl Iterator<Item = (&K, &V)> {
        let (start, end) = cloned_bounds(&range);
        let from = self.start_rank(&start);
        let last = self.seq.len().saturating_sub(1);
        let i = if from >= self.seq.len() { 1 } else { from };
        let j = if from >= self.seq.len() { 0 } else { last };
        self.seq
            .range_iter(i, j)
            // hi-lint: allow(panic-surface): ranks were clamped to the canonical empty pair or 0..len-1 just above
            .expect("clamped range is valid")
            .take_while(move |(k, _)| below_end_bound(k, &end))
            .map(|(k, v)| (k, v))
    }

    fn successor(&self, key: &K) -> Option<(K, V)> {
        self.counters.add_query();
        let (_, probe) = self.seq.lower_bound_ref_by(|pair| pair.0.cmp(key));
        probe.cloned()
    }

    fn predecessor(&self, key: &K) -> Option<(K, V)> {
        self.counters.add_query();
        let rank = self.upper_bound(key);
        if rank == 0 {
            None
        } else {
            self.seq.get(rank - 1)
        }
    }

    fn bulk_load(&mut self, pairs: impl IntoIterator<Item = (K, V)>, seed: u64) {
        let pairs = normalize_pairs(pairs.into_iter().collect());
        self.seq.bulk_load(pairs, seed);
    }

    fn apply_batch(&mut self, ops: Vec<crate::batch::BatchOp<K, V>>) -> usize {
        crate::batch::apply_keyed_batch(&mut self.seq, ops)
    }

    fn get_many(&self, keys: &[K]) -> Vec<Option<V>> {
        crate::batch::get_many_keyed(&self.seq, keys, || self.counters.add_query())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial `Vec`-backed ranked sequence used to exercise the trait's
    /// default methods (and reused as a reference model elsewhere).
    struct VecSeq(Vec<u32>);

    impl RankedSequence for VecSeq {
        type Item = u32;

        fn len(&self) -> usize {
            self.0.len()
        }

        fn insert_at(&mut self, rank: usize, item: u32) -> Result<(), RankError> {
            if rank > self.0.len() {
                return Err(RankError {
                    rank,
                    len: self.0.len(),
                });
            }
            self.0.insert(rank, item);
            Ok(())
        }

        fn delete_at(&mut self, rank: usize) -> Result<u32, RankError> {
            if rank >= self.0.len() {
                return Err(RankError {
                    rank,
                    len: self.0.len(),
                });
            }
            Ok(self.0.remove(rank))
        }

        fn get_ref(&self, rank: usize) -> Option<&u32> {
            self.0.get(rank)
        }

        fn range_iter(&self, i: usize, j: usize) -> Result<impl Iterator<Item = &u32>, RankError> {
            if i > j {
                return Ok(self.0[0..0].iter());
            }
            if j >= self.0.len() {
                return Err(RankError {
                    rank: j,
                    len: self.0.len(),
                });
            }
            Ok(self.0[i..=j].iter())
        }
    }

    #[test]
    fn default_methods_work() {
        let mut s = VecSeq(vec![]);
        assert!(s.is_empty());
        s.insert_at(0, 5).unwrap();
        s.insert_at(1, 9).unwrap();
        s.insert_at(1, 7).unwrap();
        assert_eq!(s.to_vec(), vec![5, 7, 9]);
        assert_eq!(s.get(1), Some(7));
        assert_eq!(s.get_ref(1), Some(&7));
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![5, 7, 9]);
        assert_eq!(s.delete_at(0).unwrap(), 5);
        assert_eq!(s.to_vec(), vec![7, 9]);
    }

    #[test]
    fn rank_error_display() {
        let e = RankError { rank: 9, len: 3 };
        assert_eq!(e.to_string(), "rank 9 out of bounds for length 3");
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut s = VecSeq(vec![1, 2, 3]);
        assert!(s.insert_at(5, 0).is_err());
        assert!(s.delete_at(3).is_err());
        assert!(s.query(1, 3).is_err());
    }

    #[test]
    fn empty_range_is_ok_not_error() {
        let s = VecSeq(vec![1, 2, 3]);
        // i > j is an empty range, uniformly — even at out-of-bounds ranks.
        assert_eq!(s.query(2, 1).unwrap(), Vec::<u32>::new());
        assert_eq!(s.query(7, 3).unwrap(), Vec::<u32>::new());
        let empty = VecSeq(vec![]);
        assert_eq!(empty.query(1, 0).unwrap(), Vec::<u32>::new());
        assert_eq!(empty.to_vec(), Vec::<u32>::new());
    }

    #[test]
    fn seq_bulk_load_default_replaces_contents() {
        let mut s = VecSeq(vec![9, 8]);
        s.bulk_load([1, 2, 3], 42);
        assert_eq!(s.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn normalize_pairs_sorts_and_keeps_last_duplicate() {
        let pairs = vec![(3u32, 'c'), (1, 'a'), (3, 'z'), (2, 'b')];
        assert_eq!(normalize_pairs(pairs), vec![(1, 'a'), (2, 'b'), (3, 'z')]);
    }

    #[test]
    fn ranked_dict_behaves_like_a_dictionary() {
        struct PairSeq(Vec<(u64, u64)>);
        impl RankedSequence for PairSeq {
            type Item = (u64, u64);
            fn len(&self) -> usize {
                self.0.len()
            }
            fn insert_at(&mut self, rank: usize, item: (u64, u64)) -> Result<(), RankError> {
                if rank > self.0.len() {
                    return Err(RankError {
                        rank,
                        len: self.0.len(),
                    });
                }
                self.0.insert(rank, item);
                Ok(())
            }
            fn delete_at(&mut self, rank: usize) -> Result<(u64, u64), RankError> {
                if rank >= self.0.len() {
                    return Err(RankError {
                        rank,
                        len: self.0.len(),
                    });
                }
                Ok(self.0.remove(rank))
            }
            fn get_ref(&self, rank: usize) -> Option<&(u64, u64)> {
                self.0.get(rank)
            }
            fn range_iter(
                &self,
                i: usize,
                j: usize,
            ) -> Result<impl Iterator<Item = &(u64, u64)>, RankError> {
                if i > j {
                    return Ok(self.0[0..0].iter());
                }
                if j >= self.0.len() {
                    return Err(RankError {
                        rank: j,
                        len: self.0.len(),
                    });
                }
                Ok(self.0[i..=j].iter())
            }
        }

        let mut d = RankedDict::new(PairSeq(Vec::new()));
        assert_eq!(d.insert(5, 50), None);
        assert_eq!(d.insert(1, 10), None);
        assert_eq!(d.insert(9, 90), None);
        assert_eq!(d.insert(5, 55), Some(50));
        assert_eq!(d.len(), 3);
        assert_eq!(d.get(&5), Some(55));
        assert_eq!(d.get_ref(&1), Some(&10));
        assert_eq!(d.to_sorted_vec(), vec![(1, 10), (5, 55), (9, 90)]);
        assert_eq!(d.range(&2, &9), vec![(5, 55), (9, 90)]);
        assert_eq!(d.range(&9, &2), vec![]);
        assert_eq!(d.successor(&6), Some((9, 90)));
        assert_eq!(d.predecessor(&6), Some((5, 55)));
        assert_eq!(d.predecessor(&0), None);
        assert_eq!(d.remove(&5), Some(55));
        assert_eq!(d.remove(&5), None);
        assert_eq!(d.keys().copied().collect::<Vec<_>>(), vec![1, 9]);
        d.bulk_load(vec![(4, 40), (2, 20), (4, 44)], 7);
        assert_eq!(d.to_sorted_vec(), vec![(2, 20), (4, 44)]);
    }
}
