//! Workload generators shared by the tests, examples and benchmark harnesses.
//!
//! The paper's evaluation (§4.3) uses two workloads — uniformly random
//! inserts for Figure 2 and sequential inserts for the χ² uniformity test —
//! and its motivation section describes the history-revealing workloads the
//! classic PMA suffers under ("repeatedly insert towards the front of the
//! array", "repeatedly delete from the back"). This crate generates all of
//! them, plus the Zipf-skewed and alternating-adversary workloads used by the
//! extended benchmarks, as explicit operation traces that any structure in
//! the workspace can replay.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One keyed dictionary operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Insert (or overwrite) a key with a value.
    Insert(u64, u64),
    /// Delete a key.
    Delete(u64),
    /// Point query.
    Get(u64),
    /// Range query over `[low, high]`.
    Range(u64, u64),
}

/// A reproducible operation trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Human-readable name (appears in bench output).
    pub name: &'static str,
    /// The operations, in order.
    pub ops: Vec<Op>,
}

impl Trace {
    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of insert operations in the trace.
    pub fn insert_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Insert(_, _)))
            .count()
    }
}

/// Distinct uniformly random keys, in insertion order (Figure 2's workload).
pub fn random_inserts(n: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    // hi-lint: allow(nondeterminism): membership-only dedup — trace order comes from the seeded rng; the set is never iterated
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut ops = Vec::with_capacity(n);
    while ops.len() < n {
        let key: u64 = rng.gen();
        if seen.insert(key) {
            ops.push(Op::Insert(key, ops.len() as u64));
        }
    }
    Trace {
        name: "random_inserts",
        ops,
    }
}

/// Sequential ascending inserts `1, 2, …, n` (the §4.3 χ² workload).
pub fn sequential_inserts(n: usize) -> Trace {
    Trace {
        name: "sequential_inserts",
        ops: (1..=n as u64).map(|k| Op::Insert(k, k)).collect(),
    }
}

/// Sequential descending inserts — every insert lands at the front, the
/// history-revealing workload from the paper's introduction.
pub fn front_loaded_inserts(n: usize) -> Trace {
    Trace {
        name: "front_loaded_inserts",
        ops: (1..=n as u64).rev().map(|k| Op::Insert(k, k)).collect(),
    }
}

/// Builds `n` keys then deletes the largest half in descending order
/// ("repeatedly delete from the back").
pub fn delete_from_back(n: usize) -> Trace {
    let mut ops: Vec<Op> = (1..=n as u64).map(|k| Op::Insert(k, k)).collect();
    ops.extend(((n as u64 / 2 + 1)..=n as u64).rev().map(Op::Delete));
    Trace {
        name: "delete_from_back",
        ops,
    }
}

/// A mixed read/write workload with the given insert fraction; deletes and
/// point queries fill the rest. Keys are drawn uniformly from `0..key_space`.
pub fn mixed(n: usize, key_space: u64, insert_fraction: f64, seed: u64) -> Trace {
    assert!((0.0..=1.0).contains(&insert_fraction));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        let key = rng.gen_range(0..key_space);
        let roll: f64 = rng.gen();
        if roll < insert_fraction {
            ops.push(Op::Insert(key, i as u64));
        } else if roll < insert_fraction + (1.0 - insert_fraction) / 2.0 {
            ops.push(Op::Delete(key));
        } else {
            ops.push(Op::Get(key));
        }
    }
    Trace { name: "mixed", ops }
}

/// Zipf-skewed inserts over `0..key_space` with exponent `theta` (hot keys
/// are overwritten repeatedly — an update-heavy index workload).
pub fn zipf_inserts(n: usize, key_space: u64, theta: f64, seed: u64) -> Trace {
    assert!(key_space > 0);
    assert!(theta > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    // Precompute the harmonic normalizer (capped to keep setup cheap).
    let support = key_space.min(100_000);
    let harmonics: Vec<f64> = (1..=support)
        .map(|i| 1.0 / (i as f64).powf(theta))
        .collect();
    let total: f64 = harmonics.iter().sum();
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        let mut target = rng.gen::<f64>() * total;
        let mut key = 0u64;
        for (idx, h) in harmonics.iter().enumerate() {
            target -= h;
            if target <= 0.0 {
                key = idx as u64;
                break;
            }
        }
        ops.push(Op::Insert(key, i as u64));
    }
    Trace {
        name: "zipf_inserts",
        ops,
    }
}

/// The Observation 1 adversary: fill to `n`, then alternate insert/delete of
/// a fresh key forever (for `rounds` rounds). Forces canonical-capacity
/// structures to resize on every operation.
pub fn alternating_adversary(n: usize, rounds: usize) -> Trace {
    let mut ops: Vec<Op> = (0..n as u64).map(|k| Op::Insert(k, k)).collect();
    for r in 0..rounds {
        let key = n as u64 + 1;
        if r % 2 == 0 {
            ops.push(Op::Insert(key, key));
        } else {
            ops.push(Op::Delete(key));
        }
    }
    Trace {
        name: "alternating_adversary",
        ops,
    }
}

/// Range queries of a fixed result size `k` over an existing key population
/// `0..n` (used by the range-query benches).
pub fn range_queries(n: u64, k: u64, count: usize, seed: u64) -> Trace {
    assert!(k >= 1 && k <= n);
    let mut rng = StdRng::seed_from_u64(seed);
    let ops = (0..count)
        .map(|_| {
            let low = rng.gen_range(0..n - k + 1);
            Op::Range(low, low + k - 1)
        })
        .collect();
    Trace {
        name: "range_queries",
        ops,
    }
}

/// Replays a trace against any [`hi_common::Dictionary`] with `u64` keys and
/// values, returning the number of operations applied. Used by the
/// integration tests and benches so every structure sees identical input.
pub fn replay<D>(trace: &Trace, dict: &mut D) -> usize
where
    D: hi_common::Dictionary<Key = u64, Value = u64>,
{
    for op in &trace.ops {
        match *op {
            Op::Insert(k, v) => {
                dict.insert(k, v);
            }
            Op::Delete(k) => {
                dict.remove(&k);
            }
            Op::Get(k) => {
                let _ = dict.get(&k);
            }
            Op::Range(a, b) => {
                let _ = dict.range(&a, &b);
            }
        }
    }
    trace.ops.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_inserts_are_distinct() {
        let t = random_inserts(5000, 1);
        assert_eq!(t.len(), 5000);
        assert_eq!(t.insert_count(), 5000);
        let keys: std::collections::HashSet<u64> = t
            .ops
            .iter()
            .map(|op| match op {
                Op::Insert(k, _) => *k,
                _ => panic!("only inserts expected"),
            })
            .collect();
        assert_eq!(keys.len(), 5000);
    }

    #[test]
    fn random_inserts_are_reproducible() {
        assert_eq!(random_inserts(100, 7), random_inserts(100, 7));
        assert_ne!(random_inserts(100, 7), random_inserts(100, 8));
    }

    #[test]
    fn sequential_and_front_loaded_are_reverses() {
        let seq = sequential_inserts(10);
        let front = front_loaded_inserts(10);
        let mut rev = front.ops.clone();
        rev.reverse();
        assert_eq!(seq.ops, rev);
    }

    #[test]
    fn delete_from_back_shrinks() {
        let t = delete_from_back(100);
        let deletes = t.ops.iter().filter(|o| matches!(o, Op::Delete(_))).count();
        assert_eq!(deletes, 50);
        assert_eq!(t.insert_count(), 100);
    }

    #[test]
    fn mixed_respects_fraction_roughly() {
        let t = mixed(10_000, 1000, 0.7, 3);
        let inserts = t.insert_count() as f64 / t.len() as f64;
        assert!((inserts - 0.7).abs() < 0.05, "insert fraction {inserts}");
    }

    #[test]
    fn zipf_is_skewed() {
        let t = zipf_inserts(20_000, 1000, 1.1, 5);
        let mut counts = std::collections::HashMap::new();
        for op in &t.ops {
            if let Op::Insert(k, _) = op {
                *counts.entry(*k).or_insert(0usize) += 1;
            }
        }
        let hottest = *counts.values().max().unwrap();
        assert!(
            hottest > t.len() / 100,
            "hottest key only {hottest} of {} ops",
            t.len()
        );
    }

    #[test]
    fn alternating_adversary_alternates() {
        let t = alternating_adversary(10, 6);
        assert_eq!(t.len(), 16);
        assert!(matches!(t.ops[10], Op::Insert(_, _)));
        assert!(matches!(t.ops[11], Op::Delete(_)));
    }

    #[test]
    fn range_queries_have_requested_width() {
        let t = range_queries(1000, 50, 20, 9);
        for op in &t.ops {
            match op {
                Op::Range(a, b) => assert_eq!(b - a + 1, 50),
                _ => panic!("only ranges expected"),
            }
        }
    }

    #[test]
    fn replay_into_a_btreemap_like_dictionary() {
        // Minimal Dictionary impl over BTreeMap for the test.
        struct MapDict(std::collections::BTreeMap<u64, u64>);
        impl hi_common::Dictionary for MapDict {
            type Key = u64;
            type Value = u64;
            fn len(&self) -> usize {
                self.0.len()
            }
            fn insert(&mut self, k: u64, v: u64) -> Option<u64> {
                self.0.insert(k, v)
            }
            fn remove(&mut self, k: &u64) -> Option<u64> {
                self.0.remove(k)
            }
            fn get_ref(&self, k: &u64) -> Option<&u64> {
                self.0.get(k)
            }
            fn range_iter<R: std::ops::RangeBounds<u64>>(
                &self,
                range: R,
            ) -> impl Iterator<Item = (&u64, &u64)> {
                self.0.range(range)
            }
            fn successor(&self, k: &u64) -> Option<(u64, u64)> {
                self.0.range(*k..).next().map(|(&k, &v)| (k, v))
            }
            fn predecessor(&self, k: &u64) -> Option<(u64, u64)> {
                self.0.range(..=*k).next_back().map(|(&k, &v)| (k, v))
            }
            fn to_sorted_vec(&self) -> Vec<(u64, u64)> {
                self.0.iter().map(|(&k, &v)| (k, v)).collect()
            }
        }
        let mut dict = MapDict(Default::default());
        let trace = mixed(2000, 200, 0.6, 11);
        let applied = replay(&trace, &mut dict);
        assert_eq!(applied, 2000);
        assert!(!dict.0.is_empty());
    }
}
