//! A simulation of history-independent allocation (Naor–Teague).
//!
//! The paper uses history-independent allocation as a black box (§2.1) and
//! relies on it for the external-memory skip list: "each array is allocated
//! in blocks of size Θ(B) history-independently" (§6.3). The essential
//! property is that the *addresses* at which objects live reveal nothing
//! about the order in which they were allocated: conditioned on the multiset
//! of live allocation sizes, the placement is drawn from a canonical
//! distribution.
//!
//! [`HiAllocator`] simulates this over a block-granular virtual disk: an
//! allocation of `b` blocks is placed uniformly at random over **all** free
//! positions that can hold it (every free run of length `ℓ ≥ b` contributes
//! `ℓ − b + 1` candidate offsets). Freed runs are coalesced with their
//! neighbours. The disk grows geometrically when no free run is large
//! enough, and the occupancy therefore stays within a constant factor of the
//! live data, mirroring the `O(N)` space guarantees in the paper.

use rand::Rng;

/// A live allocation handle: a contiguous run of whole blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// First block of the run.
    pub start_block: u64,
    /// Length of the run in blocks.
    pub blocks: u64,
}

impl Allocation {
    /// Byte address of the first byte, given the allocator's block size.
    pub fn byte_addr(&self, block_size: u64) -> u64 {
        self.start_block * block_size
    }

    /// Length in bytes, given the allocator's block size.
    pub fn byte_len(&self, block_size: u64) -> u64 {
        self.blocks * block_size
    }
}

/// A free run of blocks `[start, start + len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FreeRun {
    start: u64,
    len: u64,
}

/// History-independent block allocator over a simulated virtual disk.
#[derive(Debug, Clone)]
pub struct HiAllocator {
    block_size: u64,
    disk_blocks: u64,
    live_blocks: u64,
    /// Free runs, kept sorted by start block and coalesced.
    free: Vec<FreeRun>,
}

impl HiAllocator {
    /// Creates an allocator with the given block size (bytes) and an initial
    /// disk of `initial_blocks` blocks (all free).
    pub fn new(block_size: u64, initial_blocks: u64) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let initial_blocks = initial_blocks.max(1);
        Self {
            block_size,
            disk_blocks: initial_blocks,
            live_blocks: 0,
            free: vec![FreeRun {
                start: 0,
                len: initial_blocks,
            }],
        }
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Current simulated disk size in blocks.
    pub fn disk_blocks(&self) -> u64 {
        self.disk_blocks
    }

    /// Number of blocks currently allocated.
    pub fn live_blocks(&self) -> u64 {
        self.live_blocks
    }

    /// Number of blocks needed to hold `bytes` bytes.
    pub fn blocks_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.block_size).max(1)
    }

    /// Allocates a run of `blocks` blocks at a uniformly random free
    /// position, growing the disk if necessary.
    pub fn allocate<R: Rng + ?Sized>(&mut self, blocks: u64, rng: &mut R) -> Allocation {
        assert!(blocks > 0, "cannot allocate zero blocks");
        loop {
            let candidates: u64 = self
                .free
                .iter()
                .filter(|r| r.len >= blocks)
                .map(|r| r.len - blocks + 1)
                .sum();
            if candidates == 0 {
                self.grow(blocks);
                continue;
            }
            let mut pick = rng.gen_range(0..candidates);
            let mut chosen: Option<(usize, u64)> = None;
            for (i, run) in self.free.iter().enumerate() {
                if run.len < blocks {
                    continue;
                }
                let options = run.len - blocks + 1;
                if pick < options {
                    chosen = Some((i, run.start + pick));
                    break;
                }
                pick -= options;
            }
            // hi-lint: allow(panic-surface): candidates is the sum of per-run options, so pick < candidates always lands in a run
            let (idx, start) = chosen.expect("candidate accounting is consistent");
            self.carve(idx, start, blocks);
            self.live_blocks += blocks;
            return Allocation {
                start_block: start,
                blocks,
            };
        }
    }

    /// Allocates enough blocks to hold `bytes` bytes.
    pub fn allocate_bytes<R: Rng + ?Sized>(&mut self, bytes: u64, rng: &mut R) -> Allocation {
        let blocks = self.blocks_for(bytes);
        self.allocate(blocks, rng)
    }

    /// Frees a previously returned allocation.
    ///
    /// # Panics
    ///
    /// Panics if the run overlaps a free run (double free) or lies outside
    /// the disk.
    pub fn free(&mut self, alloc: Allocation) {
        assert!(
            alloc.start_block + alloc.blocks <= self.disk_blocks,
            "allocation outside the simulated disk"
        );
        let run = FreeRun {
            start: alloc.start_block,
            len: alloc.blocks,
        };
        // Find insertion point by start block.
        let pos = self.free.partition_point(|r| r.start < run.start);
        if pos > 0 {
            let prev = &self.free[pos - 1];
            assert!(
                prev.start + prev.len <= run.start,
                "double free / overlap with preceding free run"
            );
        }
        if pos < self.free.len() {
            let next = &self.free[pos];
            assert!(
                run.start + run.len <= next.start,
                "double free / overlap with following free run"
            );
        }
        self.free.insert(pos, run);
        self.coalesce_around(pos);
        self.live_blocks -= alloc.blocks;
    }

    /// Fraction of the disk currently allocated.
    pub fn utilization(&self) -> f64 {
        if self.disk_blocks == 0 {
            0.0
        } else {
            self.live_blocks as f64 / self.disk_blocks as f64
        }
    }

    fn grow(&mut self, at_least: u64) {
        let old = self.disk_blocks;
        let grow_by = old.max(at_least).max(1);
        self.free.push(FreeRun {
            start: old,
            len: grow_by,
        });
        self.disk_blocks = old + grow_by;
        // The appended run may touch the previous last free run.
        let idx = self.free.len() - 1;
        self.coalesce_around(idx);
    }

    fn carve(&mut self, idx: usize, start: u64, blocks: u64) {
        let run = self.free[idx];
        debug_assert!(start >= run.start && start + blocks <= run.start + run.len);
        let left = FreeRun {
            start: run.start,
            len: start - run.start,
        };
        let right = FreeRun {
            start: start + blocks,
            len: (run.start + run.len) - (start + blocks),
        };
        self.free.remove(idx);
        let mut insert_at = idx;
        if left.len > 0 {
            self.free.insert(insert_at, left);
            insert_at += 1;
        }
        if right.len > 0 {
            self.free.insert(insert_at, right);
        }
    }

    fn coalesce_around(&mut self, idx: usize) {
        // Merge with the following run if adjacent.
        if idx + 1 < self.free.len() {
            let (cur, next) = (self.free[idx], self.free[idx + 1]);
            if cur.start + cur.len == next.start {
                self.free[idx].len += next.len;
                self.free.remove(idx + 1);
            }
        }
        // Merge with the preceding run if adjacent.
        if idx > 0 {
            let (prev, cur) = (self.free[idx - 1], self.free[idx]);
            if prev.start + prev.len == cur.start {
                self.free[idx - 1].len += cur.len;
                self.free.remove(idx);
            }
        }
    }

    #[cfg(test)]
    fn free_blocks(&self) -> u64 {
        self.free.iter().map(|r| r.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn allocate_within_disk() {
        let mut a = HiAllocator::new(4096, 64);
        let mut r = rng(0);
        let al = a.allocate(8, &mut r);
        assert!(al.start_block + al.blocks <= a.disk_blocks());
        assert_eq!(a.live_blocks(), 8);
    }

    #[test]
    fn accounting_is_conserved() {
        let mut a = HiAllocator::new(512, 16);
        let mut r = rng(1);
        let mut live = Vec::new();
        for i in 0..200u64 {
            if i % 3 != 2 || live.is_empty() {
                live.push(a.allocate(1 + i % 5, &mut r));
            } else {
                let al: Allocation = live.swap_remove((i as usize * 7) % live.len());
                a.free(al);
            }
            assert_eq!(
                a.live_blocks() + a.free_blocks(),
                a.disk_blocks(),
                "free + live must equal disk size"
            );
        }
    }

    #[test]
    fn grows_when_needed() {
        let mut a = HiAllocator::new(512, 4);
        let mut r = rng(2);
        let al = a.allocate(32, &mut r);
        assert!(a.disk_blocks() >= 32);
        assert_eq!(al.blocks, 32);
    }

    #[test]
    fn free_coalesces() {
        let mut a = HiAllocator::new(512, 64);
        let mut r = rng(3);
        let x = a.allocate(10, &mut r);
        let y = a.allocate(10, &mut r);
        a.free(x);
        a.free(y);
        assert_eq!(a.live_blocks(), 0);
        assert_eq!(
            a.free.len(),
            1,
            "all free space should coalesce: {:?}",
            a.free
        );
        assert_eq!(a.free_blocks(), a.disk_blocks());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = HiAllocator::new(512, 64);
        let mut r = rng(4);
        let x = a.allocate(4, &mut r);
        a.free(x);
        a.free(x);
    }

    #[test]
    #[should_panic(expected = "zero blocks")]
    fn zero_allocation_panics() {
        let mut a = HiAllocator::new(512, 64);
        let mut r = rng(5);
        a.allocate(0, &mut r);
    }

    #[test]
    fn blocks_for_rounds_up() {
        let a = HiAllocator::new(4096, 4);
        assert_eq!(a.blocks_for(1), 1);
        assert_eq!(a.blocks_for(4096), 1);
        assert_eq!(a.blocks_for(4097), 2);
        assert_eq!(a.blocks_for(0), 1);
    }

    #[test]
    fn placement_is_random_not_first_fit() {
        // Allocate one block on an empty 256-block disk many times with fresh
        // randomness; a first-fit allocator would always return block 0.
        let mut seen_nonzero = false;
        for seed in 0..50 {
            let mut a = HiAllocator::new(512, 256);
            let mut r = rng(1000 + seed);
            let al = a.allocate(1, &mut r);
            if al.start_block != 0 {
                seen_nonzero = true;
            }
        }
        assert!(seen_nonzero, "placements look deterministic (first-fit?)");
    }

    #[test]
    fn placement_distribution_is_uniform() {
        // Single-block allocations on a 16-block empty disk should land on
        // each block with equal probability.
        let trials = 16_000;
        let mut counts = vec![0u64; 16];
        for seed in 0..trials {
            let mut a = HiAllocator::new(512, 16);
            let mut r = rng(5_000 + seed);
            let al = a.allocate(1, &mut r);
            counts[al.start_block as usize] += 1;
        }
        let outcome = hi_common::stats::chi2_gof_uniform(&counts);
        assert!(
            outcome.p_value > 1e-4,
            "placement not uniform: {:?}",
            counts
        );
    }

    #[test]
    fn utilization_tracks_live_fraction() {
        let mut a = HiAllocator::new(512, 100);
        let mut r = rng(9);
        assert_eq!(a.utilization(), 0.0);
        a.allocate(50, &mut r);
        assert!((a.utilization() - 0.5).abs() < 1e-9);
    }
}
