//! The DAM-model cost accountant.
//!
//! [`IoModel`] charges block transfers for accesses to a simulated,
//! byte-granular address space: internal memory holds `memory_blocks` blocks
//! of `block_size` bytes under LRU replacement, and every access to a
//! non-resident block costs one transfer. Dirty blocks are written back when
//! evicted (counted separately as writes; the paper's bounds count transfers
//! in either direction, which is `reads + writes`).

use crate::detmap::DetSet;
use crate::lru::LruCache;
use std::fmt;

/// A degenerate [`IoConfig`] rejected by [`IoConfig::validate`].
///
/// The fields are `pub`, so a struct literal can bypass the `assert` in
/// [`IoConfig::new`]; consumers that accept configs from outside (the
/// dictionary builder, CLI parsers) call [`IoConfig::validate`] to turn the
/// degenerate cases into a proper error instead of a panic deep inside the
/// model (`block_size == 0` divides by zero in block arithmetic,
/// `memory_blocks == 0` models a machine with no memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoConfigError {
    /// `block_size == 0`: no transfer unit.
    ZeroBlockSize,
    /// `memory_blocks == 0`: no internal memory to cache blocks in.
    ZeroMemoryBlocks,
}

impl fmt::Display for IoConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoConfigError::ZeroBlockSize => write!(f, "IoConfig.block_size must be positive"),
            IoConfigError::ZeroMemoryBlocks => {
                write!(f, "IoConfig.memory_blocks must be positive")
            }
        }
    }
}

impl std::error::Error for IoConfigError {}

/// Configuration of the simulated memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoConfig {
    /// Block (transfer unit) size in bytes — the DAM model's `B`.
    pub block_size: usize,
    /// Number of blocks that fit in internal memory — the DAM model's `M/B`.
    pub memory_blocks: usize,
}

impl IoConfig {
    /// A configuration with block size `block_size` bytes and memory for
    /// `memory_blocks` blocks.
    pub fn new(block_size: usize, memory_blocks: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self {
            block_size,
            memory_blocks,
        }
    }

    /// Rejects degenerate configurations (see [`IoConfigError`]).
    pub fn validate(&self) -> Result<(), IoConfigError> {
        if self.block_size == 0 {
            return Err(IoConfigError::ZeroBlockSize);
        }
        if self.memory_blocks == 0 {
            return Err(IoConfigError::ZeroMemoryBlocks);
        }
        Ok(())
    }

    /// Internal-memory size `M` in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.block_size * self.memory_blocks
    }
}

impl Default for IoConfig {
    /// Defaults to `B = 4096` bytes and `M = 4 MiB` (1024 blocks), a
    /// deliberately small cache so that I/O effects are visible at
    /// laptop-scale input sizes.
    fn default() -> Self {
        Self {
            block_size: 4096,
            memory_blocks: 1024,
        }
    }
}

/// Transfer counters accumulated by an [`IoModel`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Blocks fetched from disk (cache misses).
    pub reads: u64,
    /// Dirty blocks written back on eviction or flush.
    pub writes: u64,
    /// Individual accesses issued by the data structures (not I/Os).
    pub accesses: u64,
}

impl IoStats {
    /// Total block transfers (reads plus write-backs) — the DAM model's cost.
    pub fn transfers(&self) -> u64 {
        self.reads + self.writes
    }

    /// Difference `self − earlier`, saturating at zero.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            accesses: self.accesses.saturating_sub(earlier.accesses),
        }
    }
}

/// The DAM-model cost accountant: an LRU cache of blocks plus counters.
#[derive(Debug, Clone)]
pub struct IoModel {
    config: IoConfig,
    cache: LruCache,
    // Deterministic set: membership-only bookkeeping, and `DetSet` exposes
    // no iteration, so write-back accounting cannot silently start depending
    // on a process-random hasher.
    dirty: DetSet,
    stats: IoStats,
}

impl IoModel {
    /// Creates a model with the given configuration and a cold cache.
    pub fn new(config: IoConfig) -> Self {
        Self {
            config,
            cache: LruCache::new(config.memory_blocks),
            dirty: DetSet::new(),
            stats: IoStats::default(),
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> IoConfig {
        self.config
    }

    /// Current counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the counters but keeps the cache contents (for measuring a
    /// warm-cache operation).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Empties the cache and resets the counters (cold-cache measurement).
    pub fn reset_cold(&mut self) {
        self.cache.clear();
        self.dirty.clear();
        self.stats = IoStats::default();
    }

    /// Block id containing byte address `addr`.
    pub fn block_of(&self, addr: u64) -> u64 {
        addr / self.config.block_size as u64
    }

    /// Records a read of `len` bytes starting at byte address `addr`.
    pub fn read(&mut self, addr: u64, len: u64) {
        self.access(addr, len, false);
    }

    /// Records a write of `len` bytes starting at byte address `addr`.
    pub fn write(&mut self, addr: u64, len: u64) {
        self.access(addr, len, true);
    }

    /// Charges `reads` fetches and `writes` write-backs directly, without
    /// touching the cache — for structures that pre-compute their own
    /// DAM-model cost (see [`crate::Tracer::charge`]).
    pub fn charge(&mut self, reads: u64, writes: u64) {
        self.stats.reads += reads;
        self.stats.writes += writes;
    }

    /// Flushes all dirty blocks, charging one write per dirty block. Models a
    /// shutdown/sync; the benches call it so write-back costs are attributed
    /// to the workload that dirtied the blocks.
    pub fn flush(&mut self) {
        self.stats.writes += self.dirty.len() as u64;
        self.dirty.clear();
    }

    fn access(&mut self, addr: u64, len: u64, write: bool) {
        self.stats.accesses += 1;
        if len == 0 {
            // A zero-length access moves no bytes: zero transfers, and
            // nothing becomes dirty or cached.
            return;
        }
        let first = self.block_of(addr);
        // `addr + len - 1` is the last byte touched; saturate instead of
        // wrapping when a caller's range runs past the end of the address
        // space, which would otherwise charge for block 0 and panic the
        // `first..=last` iteration in debug builds.
        let last = self.block_of(addr.saturating_add(len - 1));
        for block in first..=last {
            let hit = self.cache.touch(block);
            if !hit {
                self.stats.reads += 1;
                // If the block we evicted was dirty it has already been
                // accounted for lazily: we approximate write-back accounting
                // by charging a write the moment a dirty block leaves the
                // dirty set due to eviction. Because `LruCache` does not
                // report evict victims, dirty blocks are charged at flush()
                // or when re-dirtied after falling out of cache.
                if write && self.dirty.remove(block) {
                    // Block fell out of the cache while dirty: charge the
                    // write-back that must have happened.
                    self.stats.writes += 1;
                }
            }
            if write {
                self.dirty.insert(block);
            }
        }
    }
}

impl Default for IoModel {
    fn default() -> Self {
        Self::new(IoConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(block: usize, blocks: usize) -> IoModel {
        IoModel::new(IoConfig::new(block, blocks))
    }

    #[test]
    fn sequential_scan_costs_len_over_b() {
        let mut m = model(64, 16);
        // Read 1024 bytes one byte at a time: 1024/64 = 16 block fetches.
        for i in 0..1024u64 {
            m.read(i, 1);
        }
        assert_eq!(m.stats().reads, 16);
        assert_eq!(m.stats().accesses, 1024);
    }

    #[test]
    fn repeated_access_is_cached() {
        let mut m = model(64, 16);
        m.read(0, 8);
        m.read(0, 8);
        m.read(32, 8);
        assert_eq!(m.stats().reads, 1);
    }

    #[test]
    fn range_read_spanning_blocks() {
        let mut m = model(100, 16);
        m.read(50, 200); // touches blocks 0, 1, 2
        assert_eq!(m.stats().reads, 3);
    }

    #[test]
    fn zero_length_access_is_free() {
        let mut m = model(64, 4);
        m.read(10, 0);
        assert_eq!(m.stats().reads, 0);
        assert_eq!(m.stats().accesses, 1);
    }

    #[test]
    fn zero_length_write_charges_zero_transfers() {
        // A zero-length write must not fetch, dirty, or cache anything:
        // flush() afterwards has no write-backs to charge.
        let mut m = model(64, 4);
        m.write(100, 0);
        assert_eq!(m.stats().reads, 0);
        m.flush();
        assert_eq!(m.stats().writes, 0);
        // And it must not have warmed the cache for the block either.
        m.read(100, 1);
        assert_eq!(m.stats().reads, 1);
    }

    #[test]
    fn boundary_straddling_write_charges_one_transfer_per_distinct_block() {
        // An 8-byte write at offset 60 with B = 64 touches bytes 60..68,
        // i.e. exactly blocks 0 and 1: two fetches, and two write-backs at
        // flush — never one, never three.
        let mut m = model(64, 16);
        m.write(60, 8);
        assert_eq!(m.stats().reads, 2);
        m.flush();
        assert_eq!(m.stats().writes, 2);
        // A one-byte access ending exactly on a boundary stays one block.
        let mut m = model(64, 16);
        m.read(63, 1);
        assert_eq!(m.stats().reads, 1);
        m.read(64, 1);
        assert_eq!(m.stats().reads, 2);
    }

    #[test]
    fn access_at_the_end_of_the_address_space_saturates() {
        // addr + len overflowing u64 must not wrap around to block 0 (which
        // would iterate the whole address space); it clamps to the last
        // block.
        let mut m = model(64, 4);
        m.read(u64::MAX - 1, 16);
        assert_eq!(m.stats().reads, 1);
        assert_eq!(m.stats().accesses, 1);
    }

    #[test]
    fn since_saturates_when_baseline_postdates_a_reset() {
        // Snapshot, then reset_stats(): the baseline now exceeds the live
        // counters, and since() must return zeros, not underflow.
        let mut m = model(64, 16);
        m.read(0, 256);
        let baseline = m.stats();
        m.reset_stats();
        m.read(0, 64);
        let delta = m.stats().since(&baseline);
        assert_eq!(delta, IoStats::default());
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let zero_block = IoConfig {
            block_size: 0,
            memory_blocks: 8,
        };
        assert_eq!(zero_block.validate(), Err(IoConfigError::ZeroBlockSize));
        let zero_memory = IoConfig {
            block_size: 4096,
            memory_blocks: 0,
        };
        assert_eq!(zero_memory.validate(), Err(IoConfigError::ZeroMemoryBlocks));
        assert_eq!(IoConfig::new(4096, 8).validate(), Ok(()));
    }

    #[test]
    fn cache_too_small_causes_thrashing() {
        let mut m = model(64, 2);
        // Cyclic scan over 4 blocks with room for 2: every access misses.
        for _ in 0..10 {
            for b in 0..4u64 {
                m.read(b * 64, 1);
            }
        }
        assert_eq!(m.stats().reads, 40);
    }

    #[test]
    fn flush_charges_dirty_blocks_once() {
        let mut m = model(64, 16);
        m.write(0, 64);
        m.write(64, 64);
        m.write(0, 8); // same block as first write
        assert_eq!(m.stats().writes, 0);
        m.flush();
        assert_eq!(m.stats().writes, 2);
        m.flush();
        assert_eq!(m.stats().writes, 2);
    }

    #[test]
    fn transfers_sums_reads_and_writes() {
        let mut m = model(64, 16);
        m.write(0, 128);
        m.flush();
        let s = m.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 2);
        assert_eq!(s.transfers(), 4);
    }

    #[test]
    fn reset_cold_clears_cache() {
        let mut m = model(64, 16);
        m.read(0, 64);
        m.reset_cold();
        assert_eq!(m.stats().reads, 0);
        m.read(0, 64);
        assert_eq!(m.stats().reads, 1);
    }

    #[test]
    fn reset_stats_keeps_cache_warm() {
        let mut m = model(64, 16);
        m.read(0, 64);
        m.reset_stats();
        m.read(0, 64);
        assert_eq!(m.stats().reads, 0, "block should still be cached");
    }

    #[test]
    fn stats_since() {
        let mut m = model(64, 16);
        m.read(0, 64);
        let before = m.stats();
        m.read(4096, 64);
        let delta = m.stats().since(&before);
        assert_eq!(delta.reads, 1);
    }

    #[test]
    fn block_of_maps_addresses() {
        let m = model(4096, 4);
        assert_eq!(m.block_of(0), 0);
        assert_eq!(m.block_of(4095), 0);
        assert_eq!(m.block_of(4096), 1);
    }
}
