//! A deterministic open-addressing map from `u64` keys, for simulator
//! bookkeeping.
//!
//! `std::collections::HashMap` seeds its hasher from process randomness, so
//! anything that observes it — iteration order, but also allocation and
//! probe patterns — varies run to run. The simulator's ledgers only ever
//! need *membership* (the LRU's id→slab index, the model's dirty set), yet
//! auditing "we never iterate" by hand on every change is exactly the kind
//! of promise this repo prefers to make structural: [`DetMap`] hashes with
//! a fixed mixer, probes linearly, and deliberately exposes **no iteration
//! API at all**, so its behavior is a pure function of the operation
//! sequence and nothing about a run can depend on a process-random seed.
//!
//! The implementation is a plain power-of-two open-addressing table with
//! tombstone deletion and load-factor-7/8 rehash (which also sweeps the
//! tombstones). All operations are `O(1)` expected; the fixed mixer is
//! splitmix64's finalizer, whose avalanche behavior keeps probe chains
//! short for the dense low-entropy block ids the simulator produces.

const EMPTY: u8 = 0;
const FULL: u8 = 1;
const TOMB: u8 = 2;

/// splitmix64's finalizer: a fixed, seedless avalanche mix.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    key: u64,
    value: usize,
    state: u8,
}

const VACANT: Slot = Slot {
    key: 0,
    value: 0,
    state: EMPTY,
};

/// A deterministic `u64 → usize` map with no iteration API (see module
/// docs for why that absence is the point).
#[derive(Debug, Clone, Default)]
pub struct DetMap {
    slots: Vec<Slot>,
    len: usize,
    tombstones: usize,
}

impl DetMap {
    /// An empty map (no allocation until the first insert).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty map pre-sized so `capacity` inserts happen without rehash.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut m = Self::new();
        if capacity > 0 {
            m.slots = vec![VACANT; table_size_for(capacity)];
        }
        m
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: u64) -> Option<usize> {
        self.find(key).map(|i| self.slots[i].value)
    }

    /// Inserts `key → value`, returning the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: u64, value: usize) -> Option<usize> {
        self.reserve_one();
        let mask = self.slots.len() - 1;
        let mut i = (mix(key) as usize) & mask;
        let mut reuse: Option<usize> = None;
        loop {
            let s = self.slots[i];
            match s.state {
                FULL if s.key == key => {
                    let old = self.slots[i].value;
                    self.slots[i].value = value;
                    return Some(old);
                }
                TOMB if reuse.is_none() => reuse = Some(i),
                TOMB => {}
                EMPTY => {
                    let target = match reuse {
                        Some(t) => {
                            self.tombstones -= 1;
                            t
                        }
                        None => i,
                    };
                    self.slots[target] = Slot {
                        key,
                        value,
                        state: FULL,
                    };
                    self.len += 1;
                    return None;
                }
                _ => {}
            }
            i = (i + 1) & mask;
        }
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: u64) -> Option<usize> {
        let i = self.find(key)?;
        let value = self.slots[i].value;
        self.slots[i] = Slot {
            key: 0,
            value: 0,
            state: TOMB,
        };
        self.len -= 1;
        self.tombstones += 1;
        Some(value)
    }

    /// Drops every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.slots.fill(VACANT);
        self.len = 0;
        self.tombstones = 0;
    }

    fn find(&self, key: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (mix(key) as usize) & mask;
        loop {
            let s = self.slots[i];
            match s.state {
                FULL if s.key == key => return Some(i),
                EMPTY => return None,
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Guarantees a vacant (empty, not tombstone) slot exists for one more
    /// insert; rehashes — which also sweeps tombstones — past 7/8 load.
    fn reserve_one(&mut self) {
        let cap = self.slots.len();
        if cap == 0 {
            self.slots = vec![VACANT; 8];
            return;
        }
        if (self.len + self.tombstones + 1) * 8 <= cap * 7 {
            return;
        }
        // Double only when genuinely full of live entries; a tombstone-heavy
        // table rehashes at the same size, so churny workloads (the LRU's
        // evict/invalidate cycle) stay at bounded capacity.
        let new_cap = if (self.len + 1) * 4 > cap * 3 {
            cap * 2
        } else {
            cap
        };
        let old = std::mem::replace(&mut self.slots, vec![VACANT; new_cap]);
        self.len = 0;
        self.tombstones = 0;
        for s in old {
            if s.state == FULL {
                self.insert(s.key, s.value);
            }
        }
    }
}

/// Smallest power-of-two table that fits `entries` below 7/8 load.
fn table_size_for(entries: usize) -> usize {
    let mut cap = 8;
    while entries * 8 > cap * 7 {
        cap *= 2;
    }
    cap
}

/// A deterministic set of `u64` keys: [`DetMap`] with unit values.
#[derive(Debug, Clone, Default)]
pub struct DetSet {
    map: DetMap,
}

impl DetSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `key` is a member.
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains(key)
    }

    /// Adds `key`; `true` if it was newly inserted.
    pub fn insert(&mut self, key: u64) -> bool {
        self.map.insert(key, 0).is_none()
    }

    /// Removes `key`; `true` if it was a member.
    pub fn remove(&mut self, key: u64) -> bool {
        self.map.remove(key).is_some()
    }

    /// Drops every member, keeping the allocation.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = DetMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(7, 70), None);
        assert_eq!(m.insert(8, 80), None);
        assert_eq!(m.insert(7, 71), Some(70));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(7), Some(71));
        assert_eq!(m.get(9), None);
        assert_eq!(m.remove(7), Some(71));
        assert_eq!(m.remove(7), None);
        assert!(!m.contains(7));
        assert!(m.contains(8));
    }

    #[test]
    fn tracks_std_hashmap_under_mixed_operations() {
        use std::collections::HashMap;
        let mut det = DetMap::new();
        let mut std = HashMap::new();
        // A deterministic pseudo-random operation tape.
        let mut x = 0xDEAD_BEEFu64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) % 512;
            match x % 3 {
                0 => assert_eq!(det.insert(key, x as usize), std.insert(key, x as usize)),
                1 => assert_eq!(det.remove(key), std.remove(&key)),
                _ => assert_eq!(det.get(key), std.get(&key).copied()),
            }
            assert_eq!(det.len(), std.len());
        }
    }

    #[test]
    fn churn_does_not_grow_without_bound() {
        // Insert/remove cycles leave tombstones; same-size rehash must sweep
        // them instead of doubling forever.
        let mut m = DetMap::new();
        for k in 0..100_000u64 {
            m.insert(k, 0);
            m.remove(k);
        }
        assert!(m.is_empty());
        assert!(m.slots.len() <= 64, "table grew to {}", m.slots.len());
    }

    #[test]
    fn with_capacity_avoids_rehash() {
        let mut m = DetMap::with_capacity(100);
        let cap = m.slots.len();
        for k in 0..100u64 {
            m.insert(k, k as usize);
        }
        assert_eq!(m.slots.len(), cap);
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn clear_keeps_allocation() {
        let mut m = DetMap::new();
        for k in 0..1000u64 {
            m.insert(k, 1);
        }
        let cap = m.slots.len();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.slots.len(), cap);
        assert_eq!(m.get(5), None);
    }

    #[test]
    fn set_semantics() {
        let mut s = DetSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert_eq!(s.len(), 1);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(s.is_empty());
    }

    #[test]
    fn behavior_is_identical_across_instances() {
        // The point of the type: two maps fed the same tape agree on every
        // observable, with no process-random seed anywhere.
        let mut a = DetMap::new();
        let mut b = DetMap::new();
        for k in [5u64, 1 << 40, 13, 5, 99, 13] {
            assert_eq!(a.insert(k, k as usize), b.insert(k, k as usize));
        }
        for k in [5u64, 7, 1 << 40] {
            assert_eq!(a.remove(k), b.remove(k));
            assert_eq!(a.get(k), b.get(k));
        }
        assert_eq!(a.len(), b.len());
    }
}
