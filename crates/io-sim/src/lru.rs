//! A fixed-capacity LRU set of block identifiers.
//!
//! The DAM model's internal memory holds `M/B` blocks; the simulator models
//! it as an LRU cache (the standard choice in cache-oblivious analysis, which
//! assumes an optimal or LRU replacement policy — LRU is within a factor of
//! two of optimal with a cache of twice the size, by Sleator–Tarjan).
//!
//! Implemented as a map from block id to an intrusive doubly-linked list
//! node kept in a slab, giving `O(1)` touch and eviction without unsafe
//! code. The id map is a [`DetMap`], not a `std::collections::HashMap`:
//! eviction order is driven by the list, never by map iteration, and the
//! deterministic table makes that structural — the cache's entire behavior
//! is a pure function of the access sequence, with no process-random hasher
//! anywhere (the property the cross-run determinism batteries rely on).

use crate::detmap::DetMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    block: u64,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU set of `u64` block ids.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    map: DetMap,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl LruCache {
    /// Creates a cache that holds at most `capacity` blocks.
    ///
    /// A capacity of zero is allowed and means every access misses.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: DetMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of blocks currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns `true` if `block` is currently resident (without touching it).
    pub fn contains(&self, block: u64) -> bool {
        self.map.contains(block)
    }

    /// Touches `block`: returns `true` on a hit (block was resident) and
    /// `false` on a miss. On a miss the block is brought in, evicting the
    /// least-recently-used block if the cache is full. Either way the block
    /// becomes the most recently used (unless capacity is zero).
    pub fn touch(&mut self, block: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(idx) = self.map.get(block) {
            self.unlink(idx);
            self.push_front(idx);
            return true;
        }
        if self.map.len() >= self.capacity {
            self.evict_lru();
        }
        let idx = self.alloc_node(block);
        self.push_front(idx);
        self.map.insert(block, idx);
        false
    }

    /// Empties the cache (a "cold cache" reset).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Removes `block` from the cache if present (used to model explicit
    /// invalidation, e.g. freeing simulated disk space).
    pub fn invalidate(&mut self, block: u64) {
        if let Some(idx) = self.map.remove(block) {
            self.unlink(idx);
            self.free.push(idx);
        }
    }

    fn alloc_node(&mut self, block: u64) -> usize {
        if let Some(idx) = self.free.pop() {
            self.slab[idx] = Node {
                block,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            self.slab.push(Node {
                block,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let Node { prev, next, .. } = self.slab[idx];
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn evict_lru(&mut self) {
        let idx = self.tail;
        debug_assert!(idx != NIL, "evicting from an empty cache");
        let block = self.slab[idx].block;
        self.unlink(idx);
        self.map.remove(block);
        self.free.push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut lru = LruCache::new(2);
        assert!(!lru.touch(1));
        assert!(lru.touch(1));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = LruCache::new(2);
        lru.touch(1);
        lru.touch(2);
        lru.touch(1); // 1 is now MRU, 2 is LRU
        lru.touch(3); // evicts 2
        assert!(lru.contains(1));
        assert!(!lru.contains(2));
        assert!(lru.contains(3));
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut lru = LruCache::new(0);
        assert!(!lru.touch(7));
        assert!(!lru.touch(7));
        assert_eq!(lru.len(), 0);
    }

    #[test]
    fn capacity_one() {
        let mut lru = LruCache::new(1);
        assert!(!lru.touch(1));
        assert!(lru.touch(1));
        assert!(!lru.touch(2));
        assert!(!lru.touch(1));
    }

    #[test]
    fn clear_empties() {
        let mut lru = LruCache::new(4);
        for b in 0..4 {
            lru.touch(b);
        }
        lru.clear();
        assert!(lru.is_empty());
        assert!(!lru.touch(0));
    }

    #[test]
    fn invalidate_removes() {
        let mut lru = LruCache::new(4);
        lru.touch(1);
        lru.touch(2);
        lru.invalidate(1);
        assert!(!lru.contains(1));
        assert!(lru.contains(2));
        assert_eq!(lru.len(), 1);
        // Invalidating an absent block is a no-op.
        lru.invalidate(99);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn sequential_scan_with_large_cache_hits_after_warmup() {
        let mut lru = LruCache::new(64);
        let mut misses = 0;
        for _ in 0..3 {
            for b in 0..64u64 {
                if !lru.touch(b) {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 64);
    }

    #[test]
    fn cyclic_scan_larger_than_cache_always_misses() {
        // Classic LRU worst case: scanning N+1 blocks with capacity N.
        let mut lru = LruCache::new(4);
        let mut misses = 0;
        for _ in 0..5 {
            for b in 0..5u64 {
                if !lru.touch(b) {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 25);
    }

    #[test]
    fn slab_reuse_after_many_evictions() {
        let mut lru = LruCache::new(8);
        for b in 0..10_000u64 {
            lru.touch(b);
        }
        assert_eq!(lru.len(), 8);
        // The slab should not have grown without bound.
        assert!(lru.slab.len() <= 16);
    }
}
