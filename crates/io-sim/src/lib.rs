//! A disk-access-machine (DAM) and cache-oblivious I/O cost simulator.
//!
//! The paper analyses every structure in the external-memory models of
//! §1.1: the DAM model (Aggarwal–Vitter) with block size `B` and memory size
//! `M`, and the cache-oblivious model (Frigo et al.) where the algorithm may
//! not use `B` or `M` but is charged for block transfers all the same. The
//! paper's own evaluation (§4.3) measures RAM runtime only; to *validate the
//! I/O theorems* (Theorems 1–3, Lemma 15) this workspace replays the
//! structures' memory accesses through a simulator that charges block
//! transfers exactly as the DAM model does:
//!
//! * [`model::IoModel`] — an LRU cache of `M/B` blocks over a byte-granular
//!   simulated address space; every access to an uncached block counts as one
//!   I/O (transfer), matching the "performance measure is transfers" rule.
//! * [`tracer::Tracer`] — a cheap, cloneable handle that data structures call
//!   (`read`/`write` of address ranges). A disabled tracer compiles down to a
//!   no-op so pure-RAM benchmarks (Figure 2) pay nothing.
//! * [`hi_alloc::HiAllocator`] — a simulation of Naor–Teague
//!   history-independent allocation, used as a black box by the paper (§2.1,
//!   §6.3): allocations are placed uniformly at random among the block-aligned
//!   free runs of the simulated disk, so addresses carry no history.
//! * [`layout`] — helpers for laying out arrays and implicit trees in the
//!   simulated address space.
//!
//! Cache-oblivious structures (the PMA, the vEB trees, the cache-oblivious
//! B-tree) never see `B` or `M`: they just report which addresses they touch,
//! and the simulator is configured with `B`/`M` only at measurement time.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod detmap;
pub mod hi_alloc;
pub mod layout;
pub mod lru;
pub mod model;
pub mod tracer;

pub use hi_alloc::{Allocation, HiAllocator};
pub use layout::Region;
pub use lru::LruCache;
pub use model::{IoConfig, IoConfigError, IoModel, IoStats};
pub use tracer::Tracer;
