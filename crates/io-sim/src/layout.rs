//! Address-space layout helpers.
//!
//! Cache-oblivious structures in this workspace are array-based: the PMA is
//! one big array of slots, the vEB trees are arrays of nodes. To charge I/Os
//! for them we only need to map *element indices* to *byte addresses* in the
//! simulated address space. A [`Region`] records a base address and an
//! element size and performs that mapping; an [`ArenaPlanner`] hands out
//! disjoint regions so a composite structure (PMA + rank tree + value tree)
//! can lay its components out the way the real structure would be laid out on
//! disk.

/// A contiguous region of the simulated address space holding fixed-size
/// elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Base byte address.
    pub base: u64,
    /// Size of one element in bytes.
    pub elem_size: u64,
    /// Number of element slots in the region.
    pub slots: u64,
}

impl Region {
    /// Creates a region at `base` with `slots` slots of `elem_size` bytes.
    pub fn new(base: u64, elem_size: u64, slots: u64) -> Self {
        assert!(elem_size > 0, "element size must be positive");
        Self {
            base,
            elem_size,
            slots,
        }
    }

    /// Byte address of slot `index`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `index` is out of bounds.
    #[inline]
    pub fn addr(&self, index: u64) -> u64 {
        debug_assert!(index < self.slots, "slot {index} out of {}", self.slots);
        self.base + index * self.elem_size
    }

    /// Byte length of `count` consecutive slots.
    #[inline]
    pub fn span(&self, count: u64) -> u64 {
        count * self.elem_size
    }

    /// Total byte length of the region.
    pub fn byte_len(&self) -> u64 {
        self.slots * self.elem_size
    }

    /// One-past-the-end byte address.
    pub fn end(&self) -> u64 {
        self.base + self.byte_len()
    }
}

/// Hands out disjoint, block-aligned regions from a growing address space.
///
/// This models the simplest possible on-disk layout: components are placed
/// one after another, each starting on a fresh alignment boundary. It is
/// *not* history independent (allocation order is visible in the addresses);
/// structures that need HI placement use [`crate::hi_alloc::HiAllocator`]
/// instead. The planner is used where the paper itself assumes a fixed
/// layout, e.g. the single array of the PMA plus its auxiliary trees.
#[derive(Debug, Clone)]
pub struct ArenaPlanner {
    next: u64,
    alignment: u64,
}

impl ArenaPlanner {
    /// Creates a planner whose regions start on multiples of `alignment`
    /// bytes (use the simulated block size for realistic layouts).
    pub fn new(alignment: u64) -> Self {
        assert!(alignment > 0, "alignment must be positive");
        Self { next: 0, alignment }
    }

    /// Reserves a region of `slots` slots of `elem_size` bytes.
    pub fn reserve(&mut self, elem_size: u64, slots: u64) -> Region {
        let base = self.next;
        let region = Region::new(base, elem_size, slots);
        let end = region.end();
        self.next = end.div_ceil(self.alignment) * self.alignment;
        region
    }

    /// Total bytes reserved so far (including alignment padding).
    pub fn reserved_bytes(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_addressing() {
        let r = Region::new(1000, 8, 100);
        assert_eq!(r.addr(0), 1000);
        assert_eq!(r.addr(5), 1040);
        assert_eq!(r.span(3), 24);
        assert_eq!(r.byte_len(), 800);
        assert_eq!(r.end(), 1800);
    }

    #[test]
    #[should_panic(expected = "element size")]
    fn zero_elem_size_panics() {
        Region::new(0, 0, 10);
    }

    #[test]
    fn planner_regions_are_disjoint_and_aligned() {
        let mut p = ArenaPlanner::new(4096);
        let a = p.reserve(8, 1000); // 8000 bytes
        let b = p.reserve(16, 10);
        assert_eq!(a.base, 0);
        assert_eq!(b.base, 8192);
        assert!(a.end() <= b.base);
        assert_eq!(b.base % 4096, 0);
        assert!(p.reserved_bytes() >= b.end());
    }

    #[test]
    fn planner_exact_block_multiple() {
        let mut p = ArenaPlanner::new(64);
        let a = p.reserve(8, 8); // exactly one block
        let b = p.reserve(8, 1);
        assert_eq!(a.base, 0);
        assert_eq!(b.base, 64);
    }
}
