//! The access-tracing handle shared by all data structures.
//!
//! A [`Tracer`] is either disabled (the default; all methods are no-ops that
//! the optimizer removes) or connected to a shared [`IoModel`]. Structures
//! hold a `Tracer` and report the byte ranges they touch; benchmark harnesses
//! construct one `IoModel`, hand clones of the connected tracer to every
//! structure under test, and read the transfer counts per operation.
//!
//! Cache-oblivious structures stay oblivious: they only know *addresses*,
//! never the block size.
//!
//! The handle is `Send + Sync` (an `Arc<Mutex<_>>` around the model), so a
//! traced engine can be moved onto the sharded service layer's worker
//! threads; a disabled tracer stays a no-op with zero synchronization cost.

use crate::model::{IoConfig, IoModel, IoStats};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks the shared model, recovering the guard if a panicking thread
/// poisoned it. The model is an accounting ledger (counters plus an LRU
/// residency set) that is consistent after every individual mutation, so
/// taking it back and continuing to count is always sound — and one
/// thread's panic never cascades through every engine sharing the ledger.
fn locked(m: &Mutex<IoModel>) -> MutexGuard<'_, IoModel> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A cloneable handle for reporting memory accesses into a shared [`IoModel`].
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    model: Option<Arc<Mutex<IoModel>>>,
}

impl Tracer {
    /// A disabled tracer: every call is a no-op.
    pub fn disabled() -> Self {
        Self { model: None }
    }

    /// A tracer connected to a fresh [`IoModel`] with the given config.
    pub fn enabled(config: IoConfig) -> Self {
        Self {
            model: Some(Arc::new(Mutex::new(IoModel::new(config)))),
        }
    }

    /// Wraps an existing model (shared with other tracers).
    pub fn with_model(model: Arc<Mutex<IoModel>>) -> Self {
        Self { model: Some(model) }
    }

    /// Returns `true` when connected to a model.
    pub fn is_enabled(&self) -> bool {
        self.model.is_some()
    }

    /// Records a read of `len` bytes at `addr`.
    #[inline]
    pub fn read(&self, addr: u64, len: u64) {
        if let Some(m) = &self.model {
            locked(m).read(addr, len);
        }
    }

    /// Records a write of `len` bytes at `addr`.
    #[inline]
    pub fn write(&self, addr: u64, len: u64) {
        if let Some(m) = &self.model {
            locked(m).write(addr, len);
        }
    }

    /// Charges `reads` block fetches and `writes` write-backs directly,
    /// bypassing the cache simulation.
    ///
    /// Structures that do their own DAM-model accounting (the baseline
    /// B-tree charges one transfer per node it touches, the skip lists
    /// charge per padded leaf array) report their per-operation cost here so
    /// that every structure's I/O shows up in one uniform [`IoStats`] ledger
    /// regardless of how the cost was derived.
    #[inline]
    pub fn charge(&self, reads: u64, writes: u64) {
        if let Some(m) = &self.model {
            locked(m).charge(reads, writes);
        }
    }

    /// Current transfer counters (zeros when disabled).
    pub fn stats(&self) -> IoStats {
        self.model
            .as_ref()
            .map(|m| locked(m).stats())
            .unwrap_or_default()
    }

    /// The model configuration, if enabled.
    pub fn config(&self) -> Option<IoConfig> {
        self.model.as_ref().map(|m| locked(m).config())
    }

    /// Resets counters, keeping the cache warm.
    pub fn reset_stats(&self) {
        if let Some(m) = &self.model {
            locked(m).reset_stats();
        }
    }

    /// Empties the cache and resets counters.
    pub fn reset_cold(&self) {
        if let Some(m) = &self.model {
            locked(m).reset_cold();
        }
    }

    /// Flushes dirty blocks (charging write-backs).
    pub fn flush(&self) {
        if let Some(m) = &self.model {
            locked(m).flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_is_send_and_sync() {
        // Compile-time audit: traced engines cross thread boundaries in the
        // sharded service layer, so the handle must be thread-safe.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tracer>();
    }

    #[test]
    fn disabled_tracer_is_noop() {
        let t = Tracer::disabled();
        t.read(0, 100);
        t.write(0, 100);
        t.flush();
        assert_eq!(t.stats(), IoStats::default());
        assert!(!t.is_enabled());
        assert!(t.config().is_none());
    }

    #[test]
    fn enabled_tracer_counts() {
        let t = Tracer::enabled(IoConfig::new(64, 8));
        t.read(0, 128);
        assert_eq!(t.stats().reads, 2);
        assert!(t.is_enabled());
        assert_eq!(t.config().unwrap().block_size, 64);
    }

    #[test]
    fn clones_share_a_model() {
        let t = Tracer::enabled(IoConfig::new(64, 8));
        let u = t.clone();
        t.read(0, 64);
        u.read(0, 64); // cached because t already fetched it
        assert_eq!(t.stats().reads, 1);
        assert_eq!(u.stats().reads, 1);
    }

    #[test]
    fn reset_cold_and_warm() {
        let t = Tracer::enabled(IoConfig::new(64, 8));
        t.read(0, 64);
        t.reset_stats();
        t.read(0, 64);
        assert_eq!(t.stats().reads, 0);
        t.reset_cold();
        t.read(0, 64);
        assert_eq!(t.stats().reads, 1);
    }
}
