#!/usr/bin/env bash
# CI gate for the anti-persistence workspace. Mirrors the tier-1 verify and
# adds lint/format/bench-compilation gates. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> hi-lint (determinism-hygiene gate: zero diagnostics, zero stale suppressions)"
cargo run --release --quiet --bin hi-lint

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo bench --no-run (compile all criterion suites)"
cargo bench --no-run

echo "==> cargo doc --no-deps (API surface must document cleanly)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> smoke-run the HI verification binary"
AP_BENCH_SCALE=1 cargo run --release --bin hi_verification >/dev/null

echo "==> smoke-run the update-throughput harness (alloc-free engine gate)"
AP_BENCH_JSON=target/ci_update_rows.json \
    cargo run --release --bin update_throughput -- --smoke >/dev/null

echo "==> smoke-run the shard-scaling harness (sharded service gate)"
AP_BENCH_JSON=target/ci_shard_rows.json \
    cargo run --release --bin shard_scaling -- --smoke >/dev/null

echo "==> smoke-run the batch-throughput harness (group-commit gate)"
AP_BENCH_JSON=target/ci_batch_rows.json \
    cargo run --release --bin batch_throughput -- --smoke >/dev/null

echo "==> smoke-run the block-store I/O harness (DAM-vs-device gate)"
AP_BENCH_JSON=target/ci_blockstore_rows.json \
    cargo run --release --bin block_store_io -- --smoke >/dev/null

echo "==> smoke-run the fault-overhead harness (checksum/scrub cost gate)"
AP_BENCH_JSON=target/ci_fault_rows.json \
    cargo run --release --bin fault_overhead -- --smoke >/dev/null

echo "==> smoke-run dict-server + dict-loadgen (network front-end gate)"
rm -f target/ci_dict_server_addr
cargo run --release --quiet --bin dict-server -- \
    --addr 127.0.0.1:0 --addr-file target/ci_dict_server_addr >/dev/null &
DICT_SERVER_PID=$!
trap 'kill "${DICT_SERVER_PID}" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    [ -s target/ci_dict_server_addr ] && break
    sleep 0.1
done
[ -s target/ci_dict_server_addr ] || { echo "dict-server never bound"; exit 1; }
AP_BENCH_JSON=target/ci_loadgen_rows.json \
    cargo run --release --quiet --bin dict-loadgen -- \
    --smoke --addr "$(cat target/ci_dict_server_addr)" >/dev/null
kill "${DICT_SERVER_PID}" 2>/dev/null || true
trap - EXIT

echo "==> smoke-run the net-fault-overhead harness (exactly-once cost gate)"
AP_BENCH_JSON=target/ci_netfault_rows.json \
    cargo run --release --quiet --bin net_fault_overhead -- --smoke >/dev/null

echo "==> validate the bench JSON row dumps (malformed rows fail CI)"
cargo run --release --quiet --bin json_check \
    target/ci_update_rows.json target/ci_shard_rows.json \
    target/ci_batch_rows.json target/ci_blockstore_rows.json \
    target/ci_fault_rows.json target/ci_loadgen_rows.json \
    target/ci_netfault_rows.json \
    BENCH_baseline.json

echo "==> run the sharded HI / stress batteries explicitly"
cargo test -q --test shard_history_independence --test shard_stress >/dev/null

echo "==> run the crash-recovery battery explicitly (>=100 kill points)"
cargo test -q --test block_store_crash >/dev/null

echo "==> run the network protocol + determinism batteries explicitly"
cargo test -q --test server_protocol --test server_determinism >/dev/null

echo "==> run the chaos soak battery (fixed seeds, smoke sweep)"
CHAOS_SMOKE=1 cargo test -q --test chaos_soak >/dev/null

echo "==> run the network chaos soak battery (wire faults, smoke sweep)"
CHAOS_SMOKE=1 cargo test -q --test net_chaos_soak >/dev/null

echo "==> run every example (builder/DynDict API regressions fail here)"
for example in quickstart range_query_engine secure_delete_audit io_model_explorer; do
    echo "    --example ${example}"
    cargo run --release --quiet --example "${example}" >/dev/null
done

echo "CI OK"
