//! Explore the DAM-model cost of the cache-oblivious structures under
//! different (simulated) block sizes — without the structures knowing `B`.
//!
//! The defining property of a cache-oblivious data structure is that one
//! layout is simultaneously efficient for *every* block size. This example
//! builds one HI PMA / cache-oblivious B-tree, replays the identical
//! operation sequence through I/O models with different `B`, and prints the
//! per-operation transfer counts next to the `log²N/B + log_B N` prediction.
//!
//! Run with: `cargo run --release --example io_model_explorer`

use anti_persistence::prelude::*;

fn measure(block_size: usize, memory_blocks: usize, n: u64, probes: u64) -> (f64, f64) {
    // The builder wires the I/O model into the structure uniformly; swap the
    // backend to explore any other engine under the same meter.
    let mut tree: DynDict<u64, u64> = Dict::builder()
        .backend(Backend::CobBTree)
        .seed(99)
        .io(IoConfig::new(block_size, memory_blocks))
        .build();
    for k in 0..n {
        tree.insert(k * 2, k);
    }
    // Cold-cache insert cost.
    tree.tracer().reset_cold();
    for k in 0..probes {
        tree.insert(k * 2 + 1, k);
    }
    let insert_ios = tree.io_stats().transfers() as f64 / probes as f64;
    // Cold-cache search cost.
    tree.tracer().reset_cold();
    for k in 0..probes {
        tree.get(&(k * 97 % (2 * n)));
    }
    let search_ios = tree.io_stats().transfers() as f64 / probes as f64;
    (insert_ios, search_ios)
}

fn main() {
    let n = 60_000u64;
    let probes = 500u64;
    println!("one cache-oblivious layout, many block sizes (N = {n})\n");
    println!(
        "{:>10} {:>16} {:>16} {:>22}",
        "B (bytes)", "insert I/Os", "search I/Os", "log²N/B + log_B N"
    );
    for block in [512usize, 1024, 4096, 16_384, 65_536] {
        // Keep the cache at 4 MiB regardless of block size.
        let memory_blocks = (4 << 20) / block;
        let (ins, srch) = measure(block, memory_blocks, n, probes);
        let records_per_block = block as f64 / 16.0;
        let log2n = (n as f64).log2();
        let prediction = log2n * log2n / records_per_block + log2n / records_per_block.log2();
        println!(
            "{:>10} {:>16.2} {:>16.2} {:>22.2}",
            block, ins, srch, prediction
        );
    }
    println!("\nThe measured columns should fall as B grows, tracking the prediction's");
    println!("shape — the structure never saw B, the I/O model applied it after the fact.");
}
