//! Quickstart: a history-independent keyed index in a few lines.
//!
//! Run with: `cargo run --release --example quickstart`

use anti_persistence::prelude::*;

fn main() {
    // The history-independent cache-oblivious B-tree is the drop-in
    // replacement for a database index. The seed is the structure's secret
    // randomness; use `CobBTree::from_entropy()` in production.
    let mut index: CobBTree<u64, String> = CobBTree::new(2024);

    println!("== inserting a few records ==");
    for (id, name) in [
        (1002, "carol"),
        (1000, "alice"),
        (1003, "dave"),
        (1001, "bob"),
    ] {
        index.insert(id, name.to_string());
        println!("  insert {id} -> {name}");
    }

    println!("\n== point and range queries ==");
    println!("  get(1001)        = {:?}", index.get(&1001));
    println!("  predecessor(1002) = {:?}", index.predecessor(&1002));
    println!(
        "  range(1000..=1002) = {:?}",
        index
            .range(&1000, &1002)
            .iter()
            .map(|(k, v)| format!("{k}:{v}"))
            .collect::<Vec<_>>()
    );

    println!("\n== secure delete ==");
    index.remove(&1002);
    println!("  removed 1002; len = {}", index.len());
    println!("  the array layout now follows the same distribution as if 1002 had never existed");

    println!("\n== what the structure looks like on disk ==");
    let occupied = index.occupancy().iter().filter(|&&b| b).count();
    println!(
        "  {} records spread over {} slots (N̂ = {}), {} element moves so far",
        index.len(),
        index.total_slots(),
        index.pma().n_hat(),
        index.counters().snapshot().element_moves
    );

    // The same API works for every dictionary in the workspace — swap in the
    // external-memory skip list or the baseline B-tree without touching call
    // sites.
    let mut skip: ExternalSkipList<u64, String> =
        ExternalSkipList::history_independent(64, 0.5, 2024);
    skip.insert(1, "via the HI skip list".to_string());
    println!("\n== the same Dictionary trait, different engine ==");
    println!("  skip list get(1) = {:?}", skip.get(&1));
    println!("  (that lookup cost {} simulated I/Os)", skip.last_op_ios());
    assert!(occupied >= index.len());
}
