//! Quickstart: a history-independent keyed index in a few lines.
//!
//! Run with: `cargo run --release --example quickstart`

use anti_persistence::prelude::*;

fn main() {
    // One builder constructs any engine; the HI cache-oblivious B-tree is
    // the drop-in replacement for a database index. The seed is the
    // structure's secret randomness — draw it from OS entropy in production.
    let mut index: DynDict<u64, String> = Dict::builder()
        .backend(Backend::CobBTree)
        .seed(2024)
        .build();

    println!("== inserting a few records ==");
    for (id, name) in [
        (1002, "carol"),
        (1000, "alice"),
        (1003, "dave"),
        (1001, "bob"),
    ] {
        index.insert(id, name.to_string());
        println!("  insert {id} -> {name}");
    }

    println!("\n== zero-copy point and range queries ==");
    println!("  get_ref(1001)     = {:?}", index.get_ref(&1001));
    println!("  predecessor(1002) = {:?}", index.predecessor(&1002));
    println!(
        "  range_iter(1000..=1002) = {:?}",
        index
            .range_iter(1000..=1002)
            .map(|(k, v)| format!("{k}:{v}"))
            .collect::<Vec<_>>()
    );

    println!("\n== secure delete ==");
    index.remove(&1002);
    println!("  removed 1002; len = {}", index.len());
    println!("  the array layout now follows the same distribution as if 1002 had never existed");

    println!("\n== batch loading with fresh coins ==");
    let mut replica: DynDict<u64, String> = Dict::builder()
        .backend(Backend::CobBTree)
        .seed(9999)
        .build();
    // bulk_load re-draws every layout coin from the given seed, so the
    // replica's bytes are a function of (contents, 0xC0FFEE) only — not of
    // the order the pairs arrive in.
    replica.bulk_load(index.iter().map(|(k, v)| (*k, v.clone())), 0xC0FFEE);
    assert_eq!(replica.to_sorted_vec(), index.to_sorted_vec());
    println!(
        "  replica bulk-loaded: {} records, same contents",
        replica.len()
    );

    println!("\n== operation ledger ==");
    let ops = index.counters().snapshot();
    println!(
        "  {} inserts, {} queries, {} element moves so far",
        ops.inserts, ops.queries, ops.element_moves
    );

    // The same call sites work for every dictionary in the workspace — swap
    // the backend word (or loop over all of them) without touching the code.
    println!("\n== the same Dictionary trait, every engine ==");
    for backend in Backend::ALL {
        let mut d: DynDict<u64, String> = Dict::builder().backend(backend).seed(2024).build();
        d.insert(1, format!("via {backend}"));
        println!("  {backend:<20} get(1) = {:?}", d.get(&1));
    }
}
