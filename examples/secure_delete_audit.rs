//! The paper's motivating scenario: a shared database whose *history* is more
//! sensitive than its contents.
//!
//! A police department keeps an index of known organised-crime members and
//! wants to hand a copy to partner agencies without revealing when each entry
//! was added (which would expose informants) or which entries were redacted
//! before sharing. This example builds the same final database through two
//! very different histories and shows that:
//!
//! * a **classic PMA** ends up with measurably different physical layouts, so
//!   an observer of the raw bytes learns something about the history, while
//! * the **history-independent PMA** produces layouts drawn from the same
//!   distribution regardless of history — the deleted informant records and
//!   the insertion order are statistically invisible.
//!
//! Run with: `cargo run --release --example secure_delete_audit`

use anti_persistence::prelude::*;

/// Summarises a layout by the density of the first half of the array — the
/// statistic the paper's introduction calls out ("the front of the array will
/// be denser than the back").
fn front_density(occupancy: &[bool]) -> f64 {
    let half = occupancy.len() / 2;
    let front = occupancy[..half].iter().filter(|&&b| b).count();
    let total = occupancy.iter().filter(|&&b| b).count().max(1);
    front as f64 / total as f64
}

fn main() {
    let n: u64 = 20_000;

    println!("building the same {n}-record database via two histories...\n");

    // History A: records arrive in ascending id order (bulk import).
    // History B: records arrive newest-first (field reports trickling in),
    //            and 2 000 informant records are added and later redacted.
    let run = |label: &str, seed_a: u64, seed_b: u64| {
        // --- classic PMA ----------------------------------------------------
        let mut classic_a: ClassicPma<u64> = ClassicPma::new();
        for k in 0..n {
            let rank = classic_a.len();
            classic_a.insert(rank, k).unwrap();
        }
        let mut classic_b: ClassicPma<u64> = ClassicPma::new();
        for k in (0..n).rev() {
            classic_b.insert(0, k).unwrap();
        }
        // --- HI cache-oblivious B-tree --------------------------------------
        // History A is a bulk import: one O(n) load drawing fresh coins from
        // seed_a — the layout distribution is identical to an incremental
        // build, which is exactly what makes the comparison below fair.
        let mut hi_a: CobBTree<u64, u64> = CobBTree::new(seed_a);
        hi_a.bulk_load((0..n).map(|k| (k, k)), seed_a);
        let mut hi_b: CobBTree<u64, u64> = CobBTree::new(seed_b);
        for k in (0..n).rev() {
            hi_b.insert(k, k);
        }
        // Informant records: inserted, used, then redacted.
        for k in n..n + 2_000 {
            hi_b.insert(k, k);
        }
        for k in n..n + 2_000 {
            hi_b.remove(&k);
        }

        assert_eq!(hi_a.to_sorted_vec(), hi_b.to_sorted_vec());

        println!("{label}");
        println!(
            "  classic PMA   front-density: bulk-import {:.3} vs newest-first {:.3}  (slots {} vs {})",
            front_density(&classic_a.occupancy()),
            front_density(&classic_b.occupancy()),
            classic_a.total_slots(),
            classic_b.total_slots(),
        );
        println!(
            "  HI structure  front-density: bulk-import {:.3} vs redacted     {:.3}  (slots {} vs {})",
            front_density(&hi_a.occupancy()),
            front_density(&hi_b.occupancy()),
            hi_a.total_slots(),
            hi_b.total_slots(),
        );
    };

    run("trial 1", 11, 12);
    run("trial 2", 21, 22);
    run("trial 3", 31, 32);

    println!();
    println!("The classic PMA's layout statistic tracks the history (and its array size");
    println!("can differ), while the HI structure's layout statistic is governed only by");
    println!("the final contents and fresh randomness — exactly the weak history");
    println!("independence guarantee of Definition 4 / Lemma 9.");
}
