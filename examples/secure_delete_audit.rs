//! The paper's motivating scenario: a shared database whose *history* is more
//! sensitive than its contents.
//!
//! A police department keeps an index of known organised-crime members and
//! wants to hand a copy to partner agencies without revealing when each entry
//! was added (which would expose informants) or which entries were redacted
//! before sharing. This example builds the same final database through two
//! very different histories and shows that:
//!
//! * a **classic PMA** ends up with measurably different physical layouts, so
//!   an observer of the raw bytes learns something about the history, while
//! * the **history-independent PMA** produces layouts drawn from the same
//!   distribution regardless of history — the deleted informant records and
//!   the insertion order are statistically invisible.
//!
//! Part two makes the claim literal: the index is flushed to a *real file*
//! through the block store, informant records are redacted, and the audit
//! greps the raw file bytes for their key patterns — zero traces must
//! remain. A conventional append-only log of the same operations is audited
//! alongside to show what anti-persistence buys: the log still holds every
//! redacted key.
//!
//! Run with: `cargo run --release --example secure_delete_audit`

use std::io::Write as _;

use anti_persistence::dict::{Backend, Dict};
use anti_persistence::prelude::*;
use block_store::temp_path;

/// Summarises a layout by the density of the first half of the array — the
/// statistic the paper's introduction calls out ("the front of the array will
/// be denser than the back").
fn front_density(occupancy: &[bool]) -> f64 {
    let half = occupancy.len() / 2;
    let front = occupancy[..half].iter().filter(|&&b| b).count();
    let total = occupancy.iter().filter(|&&b| b).count().max(1);
    front as f64 / total as f64
}

/// Counts non-overlapping occurrences of `needle` in `haystack`.
fn occurrences(haystack: &[u8], needle: &[u8]) -> usize {
    if haystack.len() < needle.len() {
        return 0;
    }
    haystack
        .windows(needle.len())
        .filter(|w| w == &needle)
        .count()
}

/// Part two: flush the index to a real file, redact the informants, and grep
/// the raw bytes of persistent storage for any trace of them.
fn audit_real_storage() {
    let n_base: u64 = 5_000;
    let n_informants: u64 = 64;
    // Informant keys carry a distinctive high-entropy prefix so the byte
    // scan cannot confuse them with base records or file metadata.
    let informant_key = |i: u64| 0xFEED_FACE_0000_0000u64 | i;

    println!("-- real-storage audit ------------------------------------------------");

    // The HI index on a real file, via the journaled block store.
    let path = temp_path("secure-delete-audit");
    let mut dict = Dict::builder()
        .backend(Backend::HiPma)
        .seed(0x5EC2E7)
        .build_persistent(&path)
        .expect("open block store");

    // A conventional append-only log of the same operations, the way a
    // naive durable index (or a WAL kept forever) would record them.
    let log_path = temp_path("secure-delete-audit-log");
    let mut log = std::fs::File::create(&log_path).expect("create log");
    let mut log_op = |tag: &[u8], key: u64| {
        log.write_all(tag).expect("log write");
        log.write_all(&key.to_le_bytes()).expect("log write");
    };

    for k in 0..n_base {
        dict.insert(k, k * 2);
        log_op(b"PUT", k);
    }
    for i in 0..n_informants {
        dict.insert(informant_key(i), i);
        log_op(b"PUT", informant_key(i));
    }
    dict.flush().expect("flush with informants");

    // While the informants are live, their bytes must be findable — this
    // proves the audit's scan actually sees the record encoding.
    let (data, _) = dict.store().raw_bytes().expect("read raw bytes");
    let live: usize = (0..n_informants)
        .map(|i| occurrences(&data, &informant_key(i).to_le_bytes()))
        .sum();
    assert!(
        live >= n_informants as usize,
        "audit scan failed to find live informant records on disk"
    );
    println!(
        "  flushed {} records; raw scan finds all {} live informant keys",
        n_base + n_informants,
        n_informants
    );

    // Redact and flush: the canonical image is f(contents, seed), so the
    // rewritten file must hold no byte of any redacted record.
    for i in 0..n_informants {
        dict.remove(&informant_key(i));
        log_op(b"DEL", informant_key(i));
    }
    dict.flush().expect("flush after redaction");

    let (data, journal) = dict.store().raw_bytes().expect("read raw bytes");
    let mut leaked = 0usize;
    for i in 0..n_informants {
        let pat = informant_key(i).to_le_bytes();
        leaked += occurrences(&data, &pat) + occurrences(&journal, &pat);
    }
    assert_eq!(
        leaked, 0,
        "{leaked} traces of redacted informants remain in the raw file bytes"
    );
    assert_eq!(dict.len() as u64, n_base, "redaction lost base records");

    drop(log);
    let log_bytes = std::fs::read(&log_path).expect("read log");
    let log_traces: usize = (0..n_informants)
        .map(|i| occurrences(&log_bytes, &informant_key(i).to_le_bytes()))
        .sum();

    println!(
        "  after redaction: block store leaks {leaked} informant traces \
         ({} bytes scanned, journal included)",
        data.len() + journal.len()
    );
    println!(
        "  the append-only log still holds {log_traces} informant traces \
         ({} bytes) — every PUT and even the DEL betrays the key",
        log_bytes.len()
    );
    assert!(
        log_traces >= 2 * n_informants as usize,
        "the contrast log should retain the redacted keys"
    );

    let _ = std::fs::remove_file(dict.store().path());
    let _ = std::fs::remove_file(dict.store().journal_path());
    let _ = std::fs::remove_file(&log_path);
    println!();
}

fn main() {
    let n: u64 = 20_000;

    println!("building the same {n}-record database via two histories...\n");

    // History A: records arrive in ascending id order (bulk import).
    // History B: records arrive newest-first (field reports trickling in),
    //            and 2 000 informant records are added and later redacted.
    let run = |label: &str, seed_a: u64, seed_b: u64| {
        // --- classic PMA ----------------------------------------------------
        let mut classic_a: ClassicPma<u64> = ClassicPma::new();
        for k in 0..n {
            let rank = classic_a.len();
            classic_a.insert(rank, k).unwrap();
        }
        let mut classic_b: ClassicPma<u64> = ClassicPma::new();
        for k in (0..n).rev() {
            classic_b.insert(0, k).unwrap();
        }
        // --- HI cache-oblivious B-tree --------------------------------------
        // History A is a bulk import: one O(n) load drawing fresh coins from
        // seed_a — the layout distribution is identical to an incremental
        // build, which is exactly what makes the comparison below fair.
        let mut hi_a: CobBTree<u64, u64> = CobBTree::new(seed_a);
        hi_a.bulk_load((0..n).map(|k| (k, k)), seed_a);
        let mut hi_b: CobBTree<u64, u64> = CobBTree::new(seed_b);
        for k in (0..n).rev() {
            hi_b.insert(k, k);
        }
        // Informant records: inserted, used, then redacted.
        for k in n..n + 2_000 {
            hi_b.insert(k, k);
        }
        for k in n..n + 2_000 {
            hi_b.remove(&k);
        }

        assert_eq!(hi_a.to_sorted_vec(), hi_b.to_sorted_vec());

        println!("{label}");
        println!(
            "  classic PMA   front-density: bulk-import {:.3} vs newest-first {:.3}  (slots {} vs {})",
            front_density(&classic_a.occupancy()),
            front_density(&classic_b.occupancy()),
            classic_a.total_slots(),
            classic_b.total_slots(),
        );
        println!(
            "  HI structure  front-density: bulk-import {:.3} vs redacted     {:.3}  (slots {} vs {})",
            front_density(&hi_a.occupancy()),
            front_density(&hi_b.occupancy()),
            hi_a.total_slots(),
            hi_b.total_slots(),
        );
    };

    run("trial 1", 11, 12);
    run("trial 2", 21, 22);
    run("trial 3", 31, 32);

    println!();
    audit_real_storage();
    println!("The classic PMA's layout statistic tracks the history (and its array size");
    println!("can differ), while the HI structure's layout statistic is governed only by");
    println!("the final contents and fresh randomness — exactly the weak history");
    println!("independence guarantee of Definition 4 / Lemma 9.");
}
