//! A sharded range-query service: the workload a database secondary index
//! sees, scaled out the way a deployment actually runs it.
//!
//! One builder line turns any engine into an `S`-shard service
//! (`.shards(S).build_sharded()`): keys hash-partition across `S`
//! independent history-independent shards behind a seeded router, bulk
//! ingest and point-read traffic arrive as batches that fan out to scoped
//! worker threads, and global range scans k-way-merge the shards' lazy
//! iterators without allocating. The per-shard I/O tracers roll up into
//! one aggregated ledger, so the measurement code below is identical for
//! every backend — and the merged scans still show the `log_B N + k/B`
//! shape of Theorems 2 and 3.
//!
//! Run with: `cargo run --release --example range_query_engine`

use anti_persistence::prelude::*;
use std::time::Instant;
use workloads::{mixed, random_inserts, Op};

fn main() {
    let n = 50_000usize;
    let block = 64usize;
    let shards = 4usize;

    let load = random_inserts(n, 7);
    let work = mixed(20_000, 2 * n as u64, 0.4, 9);

    // The engines under comparison — a runtime value, not a code path.
    let engines = [
        Backend::CobBTree,
        Backend::HiSkipList,
        Backend::FolkloreSkipList,
        Backend::BTree,
    ];

    println!(
        "{shards}-shard service: bulk-ingesting {n} random keys, then {} mixed ops\n",
        work.len()
    );
    println!(
        "{:<28} {:>12} {:>12} {:>14}",
        "backend", "ingest ms", "work ms", "ops/s (work)"
    );

    let mut built: Vec<ShardedDict<DynDict<u64, u64>>> = Vec::new();
    for backend in engines {
        let mut service: ShardedDict<DynDict<u64, u64>> = Dict::builder()
            .backend(backend)
            .seed(1 + backend as u64)
            .block_elems(block)
            .fanout(block)
            .io(IoConfig::new(4096, 1 << 10))
            .shards(shards)
            .build_sharded();
        service.set_parallel_threshold(0); // every batch takes the threaded path

        // Bulk ingest: the load trace arrives as one batched multi_put.
        let t0 = Instant::now();
        service.multi_put(load.ops.iter().filter_map(|op| match op {
            Op::Insert(k, v) => Some((*k, *v)),
            _ => None,
        }));
        let load_ms = t0.elapsed().as_secs_f64() * 1000.0;

        // Mixed traffic: point reads go through batched multi_get, writes
        // and deletes through the batched write path, range queries through
        // the merged scan.
        let t1 = Instant::now();
        let mut puts: Vec<(u64, u64)> = Vec::new();
        let mut gets: Vec<u64> = Vec::new();
        let mut sink = 0u64;
        for op in &work.ops {
            match *op {
                Op::Insert(k, v) => puts.push((k, v)),
                Op::Delete(k) => {
                    service.multi_put(std::mem::take(&mut puts));
                    service.remove(&k);
                }
                Op::Get(k) => gets.push(k),
                Op::Range(a, b) => {
                    service.multi_put(std::mem::take(&mut puts));
                    sink ^= service.range_iter(a..=b).map(|(_, v)| *v).sum::<u64>();
                }
            }
            if gets.len() >= 512 {
                for v in service.multi_get(&gets).into_iter().flatten() {
                    sink ^= v;
                }
                gets.clear();
            }
        }
        service.multi_put(puts);
        for v in service.multi_get(&gets).into_iter().flatten() {
            sink ^= v;
        }
        std::hint::black_box(sink);
        let work_ms = t1.elapsed().as_secs_f64() * 1000.0;

        println!(
            "{:<28} {:>12.1} {:>12.1} {:>14.0}",
            backend.name(),
            load_ms,
            work_ms,
            work.len() as f64 / (work_ms / 1000.0)
        );
        built.push(service);
    }

    // Range-scan cost as a function of result size, read from the
    // *aggregated* per-shard I/O ledgers — identical measurement code for
    // every backend; the scans go through the allocation-free k-way merge.
    println!("\nrange-scan cost (simulated block transfers per query, k = result size,");
    println!("summed across all {shards} shard tracers)");
    print!("{:<10}", "k");
    for backend in engines {
        print!(" {:>18}", backend.name());
    }
    println!();
    for k in [16u64, 64, 256, 1024, 4096] {
        let queries = workloads::range_queries(n as u64, k, 20, k);
        print!("{k:<10}");
        for service in &built {
            let mut total = 0u64;
            let mut count = 0u64;
            for op in &queries.ops {
                if let Op::Range(a, b) = op {
                    for shard in service.shards() {
                        shard.tracer().reset_cold();
                    }
                    let hits = service.range_iter(*a..=*b).count();
                    total += service.io_stats().transfers();
                    count += 1;
                    assert!(hits as u64 <= k);
                }
            }
            print!(" {:>18.1}", total as f64 / count as f64);
        }
        println!();
    }

    println!("\nExpect every column to grow roughly linearly in k/B once k dominates the");
    println!("search term — sharding leaves the `log_B N + k/B` shape of Theorems 2");
    println!("and 3 intact, because each shard scans only its own k/S of the hits.");
}
