//! A tiny range-query engine: the workload a database secondary index sees.
//!
//! Loads a keyspace into all four dictionaries (HI cache-oblivious B-tree,
//! HI external skip list, folklore B-skip list, external B-tree), runs the
//! same mixed workload against each, and reports throughput plus the
//! simulated I/O cost of range scans of increasing size — the `log_B N + k/B`
//! shape from Theorems 2 and 3.
//!
//! Run with: `cargo run --release --example range_query_engine`

use anti_persistence::prelude::*;
use std::time::Instant;
use workloads::{mixed, random_inserts, replay, Op};

fn main() {
    let n = 50_000usize;
    let block = 64usize;

    let load = random_inserts(n, 7);
    let work = mixed(20_000, 2 * n as u64, 0.4, 9);

    println!("loading {n} random keys, then {} mixed ops\n", work.len());
    println!(
        "{:<28} {:>12} {:>12} {:>14}",
        "structure", "load ms", "work ms", "ops/s (work)"
    );

    let mut cob: CobBTree<u64, u64> = CobBTree::new(1);
    let mut hi_skip: ExternalSkipList<u64, u64> =
        ExternalSkipList::history_independent(block, 0.5, 2);
    let mut b_skip: ExternalSkipList<u64, u64> = ExternalSkipList::folklore_b(block, 3);
    let mut btree: BTree<u64, u64> = BTree::new(block);

    let report = |name: &str, load_ms: f64, work_ms: f64| {
        println!(
            "{:<28} {:>12.1} {:>12.1} {:>14.0}",
            name,
            load_ms,
            work_ms,
            work.len() as f64 / (work_ms / 1000.0)
        );
    };

    macro_rules! run {
        ($name:expr, $dict:expr) => {{
            let t0 = Instant::now();
            replay(&load, &mut $dict);
            let load_ms = t0.elapsed().as_secs_f64() * 1000.0;
            let t1 = Instant::now();
            replay(&work, &mut $dict);
            let work_ms = t1.elapsed().as_secs_f64() * 1000.0;
            report($name, load_ms, work_ms);
        }};
    }

    run!("HI cache-oblivious B-tree", cob);
    run!("HI external skip list", hi_skip);
    run!("folklore B-skip list", b_skip);
    run!("external B-tree", btree);

    // Range-scan cost as a function of result size, for the structures that
    // report per-operation I/Os.
    println!("\nrange-scan cost (simulated I/Os per query, k = result size)");
    println!(
        "{:<10} {:>16} {:>16} {:>16}",
        "k", "HI skip list", "B-skip list", "B-tree"
    );
    for k in [16u64, 64, 256, 1024, 4096] {
        let queries = workloads::range_queries(n as u64, k, 20, k);
        let cost = |d: &dyn Fn(u64, u64) -> u64| {
            let mut total = 0u64;
            let mut count = 0u64;
            for op in &queries.ops {
                if let Op::Range(a, b) = op {
                    total += d(*a, *b);
                    count += 1;
                }
            }
            total as f64 / count as f64
        };
        let hi_cost = cost(&|a, b| {
            hi_skip.range(&a, &b);
            hi_skip.last_op_ios()
        });
        let bs_cost = cost(&|a, b| {
            b_skip.range(&a, &b);
            b_skip.last_op_ios()
        });
        let bt_cost = cost(&|a, b| {
            btree.range(&a, &b);
            btree.last_op_ios()
        });
        println!(
            "{:<10} {:>16.1} {:>16.1} {:>16.1}",
            k, hi_cost, bs_cost, bt_cost
        );
    }

    println!("\nExpect every column to grow roughly linearly in k/B once k dominates the");
    println!("search term — that is the `log_B N + k/B` bound of Theorems 2 and 3.");
}
