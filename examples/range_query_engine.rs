//! A tiny range-query engine: the workload a database secondary index sees.
//!
//! Before the unified builder, this example needed one variable and one
//! macro invocation per structure; now the engines are *data* — a list of
//! [`Backend`] values — and one loop bulk-loads each, runs the same mixed
//! workload, and reports throughput plus the simulated I/O cost of range
//! scans of increasing size (the `log_B N + k/B` shape from Theorems 2
//! and 3), measured through the uniform tracer the builder installs.
//!
//! Run with: `cargo run --release --example range_query_engine`

use anti_persistence::prelude::*;
use std::time::Instant;
use workloads::{mixed, random_inserts, replay, Op};

fn main() {
    let n = 50_000usize;
    let block = 64usize;

    let load = random_inserts(n, 7);
    let work = mixed(20_000, 2 * n as u64, 0.4, 9);

    // The engines under comparison — a runtime value, not a code path.
    let engines = [
        Backend::CobBTree,
        Backend::HiSkipList,
        Backend::FolkloreSkipList,
        Backend::BTree,
    ];

    println!("loading {n} random keys, then {} mixed ops\n", work.len());
    println!(
        "{:<28} {:>12} {:>12} {:>14}",
        "backend", "load ms", "work ms", "ops/s (work)"
    );

    let mut built: Vec<DynDict<u64, u64>> = Vec::new();
    for backend in engines {
        let mut dict: DynDict<u64, u64> = Dict::builder()
            .backend(backend)
            .seed(1 + backend as u64)
            .block_elems(block)
            .fanout(block)
            .io(IoConfig::new(4096, 1 << 10))
            .build();
        let t0 = Instant::now();
        replay(&load, &mut dict);
        let load_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let t1 = Instant::now();
        replay(&work, &mut dict);
        let work_ms = t1.elapsed().as_secs_f64() * 1000.0;
        println!(
            "{:<28} {:>12.1} {:>12.1} {:>14.0}",
            backend.name(),
            load_ms,
            work_ms,
            work.len() as f64 / (work_ms / 1000.0)
        );
        built.push(dict);
    }

    // Range-scan cost as a function of result size, read from the uniform
    // I/O ledger — identical measurement code for every backend, and the
    // scans themselves go through the allocation-free `range_iter` path.
    println!("\nrange-scan cost (simulated block transfers per query, k = result size)");
    print!("{:<10}", "k");
    for backend in engines {
        print!(" {:>18}", backend.name());
    }
    println!();
    for k in [16u64, 64, 256, 1024, 4096] {
        let queries = workloads::range_queries(n as u64, k, 20, k);
        print!("{k:<10}");
        for dict in &built {
            let mut total = 0u64;
            let mut count = 0u64;
            for op in &queries.ops {
                if let Op::Range(a, b) = op {
                    dict.tracer().reset_cold();
                    let hits = dict.range_iter(*a..=*b).count();
                    total += dict.io_stats().transfers();
                    count += 1;
                    assert!(hits as u64 <= k);
                }
            }
            print!(" {:>18.1}", total as f64 / count as f64);
        }
        println!();
    }

    println!("\nExpect every column to grow roughly linearly in k/B once k dominates the");
    println!("search term — that is the `log_B N + k/B` bound of Theorems 2 and 3.");
}
