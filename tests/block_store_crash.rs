//! Crash-recovery battery for the file-backed block store.
//!
//! For every possible kill point of a flush — the write fuse trips after
//! exactly `k` physical block writes, for every `k` up to the flush's full
//! write count — the battery verifies the two properties the journaled
//! commit protocol promises:
//!
//! * **atomicity**: reopening the file recovers *exactly* the contents of
//!   either the previous flush (crash before the journal header — the
//!   commit point — landed) or the interrupted one (crash after), never a
//!   torn mixture;
//! * **canonical layout**: whichever image survives, its layout fingerprint
//!   equals that of a fresh `bulk_load(contents, seed)` — the recovered
//!   file is the pure function `f(contents, seed)`, so the crash leaked no
//!   operation history onto the platter.
//!
//! Each kill point is a full trial: build, flush, mutate, arm the fuse,
//! crash mid-flush, reopen, audit. Several deterministic op scripts keep
//! the total above 100 kill points and make both outcomes (rollback and
//! replay) occur.

use std::collections::BTreeMap;

use anti_persistence::dict::{Backend, Dict};
use anti_persistence::prelude::*;
use block_store::temp_path;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// Phase 1: a deterministic base load. Mirrored into `oracle`.
fn phase1(dict: &mut PersistentDict, oracle: &mut BTreeMap<u64, u64>, script: u64) {
    let mut state = script.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    for i in 0..300u64 {
        let k = lcg(&mut state) % 10_000;
        dict.insert(k, i);
        oracle.insert(k, i);
    }
}

/// Phase 2: a mixed insert/remove workload that changes the key set (so the
/// two flushed images genuinely differ). Mirrored into `oracle`.
fn phase2(dict: &mut PersistentDict, oracle: &mut BTreeMap<u64, u64>, script: u64) {
    let mut state = script.wrapping_mul(0xD1B54A32D192ED03) | 1;
    for i in 0..200u64 {
        let k = lcg(&mut state) % 10_000;
        if i % 3 == 0 {
            dict.remove(&k);
            oracle.remove(&k);
        } else {
            dict.insert(k, i + 1_000_000);
            oracle.insert(k, i + 1_000_000);
        }
    }
}

fn contents_of(dict: &PersistentDict) -> Vec<(u64, u64)> {
    dict.iter().map(|(k, v)| (*k, *v)).collect()
}

fn oracle_vec(oracle: &BTreeMap<u64, u64>) -> Vec<(u64, u64)> {
    oracle.iter().map(|(&k, &v)| (k, v)).collect()
}

fn builder(seed: u64) -> DictBuilder {
    Dict::builder().backend(Backend::HiPma).seed(seed)
}

fn open(path: &std::path::Path, seed: u64) -> PersistentDict {
    // 512-byte blocks keep per-flush write counts in the dozens, so
    // sweeping every kill point stays fast; no_sync because the process
    // survives the injected crash — only write *ordering* is under test.
    builder(seed)
        .build_persistent_with(path, StoreOptions::new(512).no_sync())
        .unwrap()
}

fn cleanup(dict: &PersistentDict) {
    let data = dict.store().path().to_path_buf();
    let journal = dict.store().journal_path().to_path_buf();
    drop_paths(&data, &journal);
}

fn drop_paths(data: &std::path::Path, journal: &std::path::Path) {
    let _ = std::fs::remove_file(data);
    let _ = std::fs::remove_file(journal);
}

/// The recovered structure must be `f(contents, seed)`: a fresh bulk load
/// of the same contents with the stored seed reproduces slot count and
/// occupancy bitmap bit for bit.
fn assert_canonical(reopened: &PersistentDict) {
    let contents = contents_of(reopened);
    let mut reference: DynDict<u64, u64> = builder(0).build();
    reference.bulk_load(contents, reopened.seed());
    assert_eq!(reference.slot_count(), reopened.slot_count());
    assert_eq!(
        reference.occupancy_words().unwrap(),
        reopened.occupancy_words().unwrap(),
        "recovered layout is not f(contents, seed)"
    );
}

#[test]
fn every_kill_point_recovers_a_whole_canonical_image() {
    const SCRIPTS: u64 = 3;
    const SEED: u64 = 0xC4A54;

    let mut kill_points = 0u64;
    let mut rollbacks = 0u64;
    let mut replays = 0u64;

    for script in 0..SCRIPTS {
        // Dry run: learn how many physical block writes the second flush
        // performs, so the fuse sweep covers every boundary exactly once.
        let path = temp_path(&format!("crash-dry-{script}"));
        let mut oracle = BTreeMap::new();
        let mut dict = open(&path, SEED);
        phase1(&mut dict, &mut oracle, script);
        dict.flush().unwrap();
        let oracle1 = oracle_vec(&oracle);
        let before = dict.store().stats().blocks_written();
        phase2(&mut dict, &mut oracle, script);
        dict.flush().unwrap();
        let writes = dict.store().stats().blocks_written() - before;
        let oracle2 = oracle_vec(&oracle);
        assert_ne!(oracle1, oracle2, "script {script}: phases must differ");
        cleanup(&dict);
        drop(dict);

        for k in 1..=writes {
            let path = temp_path(&format!("crash-{script}-{k}"));
            let mut oracle = BTreeMap::new();
            let mut dict = open(&path, SEED);
            phase1(&mut dict, &mut oracle, script);
            dict.flush().unwrap();
            phase2(&mut dict, &mut oracle, script);
            dict.store_mut().set_fuse(WriteFuse::after(k));
            let crashed = dict.flush().is_err();
            if crashed {
                assert!(
                    dict.store().is_poisoned(),
                    "k={k}: failed store must poison"
                );
            }
            let data = dict.store().path().to_path_buf();
            let journal = dict.store().journal_path().to_path_buf();
            drop(dict); // the simulated process death

            // A different builder seed on reopen: the stored one must win.
            let reopened = open(&path, SEED ^ 0xFFFF);
            assert_eq!(reopened.seed(), SEED, "k={k}");
            let recovered = contents_of(&reopened);
            if crashed {
                kill_points += 1;
                if recovered == oracle1 {
                    rollbacks += 1;
                } else if recovered == oracle2 {
                    replays += 1;
                } else {
                    panic!(
                        "script {script}, kill point {k}: recovered a torn image \
                         ({} records; expected {} or {})",
                        recovered.len(),
                        oracle1.len(),
                        oracle2.len()
                    );
                }
            } else {
                // Fuse budget outlasted the flush: it must have completed.
                assert_eq!(recovered, oracle2, "k={k}: complete flush lost data");
            }
            assert_canonical(&reopened);
            drop_paths(&data, &journal);
        }
    }

    assert!(
        kill_points >= 100,
        "only {kill_points} kill points swept; the battery must cover ≥ 100"
    );
    assert!(rollbacks > 0, "no kill point exercised rollback");
    assert!(replays > 0, "no kill point exercised journal replay");
}

#[test]
fn a_poisoned_store_refuses_further_commits() {
    let path = temp_path("crash-poison");
    let mut oracle = BTreeMap::new();
    let mut dict = open(&path, 7);
    phase1(&mut dict, &mut oracle, 0);
    dict.store_mut().set_fuse(WriteFuse::after(3));
    dict.flush().unwrap_err();
    // No amount of retrying on the dead handle may touch the file again.
    let err = dict.flush().unwrap_err();
    assert!(err.to_string().contains("poisoned"), "{err}");
    cleanup(&dict);
}

#[test]
fn crash_on_the_very_first_flush_leaves_an_uninitialized_file() {
    let path = temp_path("crash-first");
    let mut oracle = BTreeMap::new();
    let mut dict = open(&path, 7);
    phase1(&mut dict, &mut oracle, 1);
    dict.store_mut().set_fuse(WriteFuse::after(2));
    dict.flush().unwrap_err();
    let data = dict.store().path().to_path_buf();
    let journal = dict.store().journal_path().to_path_buf();
    drop(dict);

    // There was no previous image to roll back to: reopen must come up
    // empty (and usable), not error out on a half-written file.
    let reopened = open(&path, 7);
    assert_eq!(reopened.len(), 0);
    drop_paths(&data, &journal);
}
