//! Cross-structure conformance battery.
//!
//! Every dictionary in the workspace — the external B-tree baseline, the HI
//! cache-oblivious B-tree, and the external skip list in all three
//! parameterizations — is driven through the same seeded differential
//! scripts against a `BTreeMap` oracle, and through the same deterministic
//! edge-case battery. The rank-addressed PMAs get the equivalent treatment
//! against a `Vec` oracle. A future structure joins the battery by adding
//! one constructor closure per test.

use anti_persistence::prelude::*;
use test_support::{
    dictionary_edge_cases, run_batch_differential, run_bulk_load_differential,
    run_dict_differential, run_seq_differential, standard_scripts, BatchProfile, SeqProfile,
};

#[test]
fn btree_matches_the_oracle_on_standard_scripts() {
    for script in standard_scripts() {
        let mut dict: BTree<u64, u64> = BTree::new(16);
        run_dict_differential(&mut dict, &script);
        dict.check_invariants();
    }
}

#[test]
fn cob_btree_matches_the_oracle_on_standard_scripts() {
    for (i, script) in standard_scripts().iter().enumerate() {
        let mut dict: CobBTree<u64, u64> = CobBTree::new(1000 + i as u64);
        run_dict_differential(&mut dict, script);
        dict.check_invariants();
    }
}

#[test]
fn hi_skiplist_matches_the_oracle_on_standard_scripts() {
    for (i, script) in standard_scripts().iter().enumerate() {
        let mut dict: ExternalSkipList<u64, u64> =
            ExternalSkipList::history_independent(16, 0.5, 2000 + i as u64);
        run_dict_differential(&mut dict, script);
        dict.check_invariants();
    }
}

#[test]
fn folklore_skiplist_matches_the_oracle_on_standard_scripts() {
    for (i, script) in standard_scripts().iter().enumerate() {
        let mut dict: ExternalSkipList<u64, u64> =
            ExternalSkipList::folklore_b(16, 3000 + i as u64);
        run_dict_differential(&mut dict, script);
        dict.check_invariants();
    }
}

#[test]
fn in_memory_skiplist_matches_the_oracle_on_standard_scripts() {
    for (i, script) in standard_scripts().iter().enumerate() {
        let mut dict: ExternalSkipList<u64, u64> = ExternalSkipList::in_memory(4000 + i as u64);
        run_dict_differential(&mut dict, script);
        dict.check_invariants();
    }
}

#[test]
fn btree_edge_cases() {
    dictionary_edge_cases(|| BTree::<u64, u64>::new(4));
    dictionary_edge_cases(|| BTree::<u64, u64>::new(128));
}

#[test]
fn cob_btree_edge_cases() {
    dictionary_edge_cases(|| CobBTree::<u64, u64>::new(5));
}

#[test]
fn hi_skiplist_edge_cases() {
    dictionary_edge_cases(|| ExternalSkipList::<u64, u64>::history_independent(16, 0.5, 6));
    dictionary_edge_cases(|| ExternalSkipList::<u64, u64>::history_independent(4, 0.25, 7));
}

#[test]
fn folklore_skiplist_edge_cases() {
    dictionary_edge_cases(|| ExternalSkipList::<u64, u64>::folklore_b(16, 8));
}

#[test]
fn in_memory_skiplist_edge_cases() {
    dictionary_edge_cases(|| ExternalSkipList::<u64, u64>::in_memory(9));
}

// ---------------------------------------------------------------------
// Runtime-selected backends: the same scripts through the builder/DynDict
// facade, covering all seven engines with one loop — including the two
// PMAs, which join the keyed battery through the RankedDict adapter.
// ---------------------------------------------------------------------

#[test]
fn every_dyn_backend_matches_the_oracle_on_standard_scripts() {
    for backend in Backend::ALL {
        for (i, script) in standard_scripts().iter().enumerate() {
            let mut dict: DynDict<u64, u64> = Dict::builder()
                .backend(backend)
                .seed(9000 + i as u64)
                .block_elems(16)
                .fanout(16)
                .build();
            run_dict_differential(&mut dict, script);
            dict.check_invariants();
        }
    }
}

#[test]
fn every_dyn_backend_passes_the_edge_cases() {
    for backend in Backend::ALL {
        dictionary_edge_cases(|| {
            Dict::builder()
                .backend(backend)
                .seed(31)
                .block_elems(8)
                .fanout(4)
                .build::<u64, u64>()
        });
    }
}

#[test]
fn the_builder_rejects_degenerate_io_configs() {
    // `IoConfig`'s fields are public, so a struct literal can smuggle in
    // values the constructor's assert would reject; the builder must catch
    // them at build time with a named error instead of panicking deep
    // inside the I/O model on the first traced access.
    let bad_configs = [
        (
            IoConfig {
                block_size: 0,
                memory_blocks: 16,
            },
            "block_size == 0",
        ),
        (
            IoConfig {
                block_size: 4096,
                memory_blocks: 0,
            },
            "memory_blocks == 0",
        ),
    ];
    for (bad, name) in bad_configs {
        for backend in Backend::ALL {
            let err = Dict::builder()
                .backend(backend)
                .io(bad)
                .try_build::<u64, u64>()
                .map(|_| ())
                .unwrap_err();
            assert!(
                matches!(err, DictConfigError::Io(_)),
                "{backend}: degenerate IoConfig ({name}) must be rejected, got {err}"
            );
        }
        let err = Dict::builder()
            .io(bad)
            .shards(2)
            .try_build_sharded::<u64, u64>()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, DictConfigError::Io(_)), "sharded: {name}");
    }
}

#[test]
#[should_panic(expected = "invalid dictionary config")]
fn the_infallible_builder_panics_at_build_time_not_inside_the_model() {
    let _ = Dict::builder()
        .io(IoConfig {
            block_size: 0,
            memory_blocks: 0,
        })
        .build::<u64, u64>();
}

#[test]
fn every_dyn_backend_bulk_loads_against_the_oracle() {
    for backend in Backend::ALL {
        run_bulk_load_differential(
            || {
                Dict::builder()
                    .backend(backend)
                    .seed(71)
                    .build::<u64, u64>()
            },
            1_000,
            0xACE,
        );
    }
}

#[test]
fn every_dyn_backend_survives_mixed_batches_against_the_oracle() {
    // Group-commit batches (apply_batch / extend / get_many) with duplicate
    // keys inside one batch, put-then-remove episodes and remove misses —
    // the oracle applies the same stream per-op, so any divergence between
    // the batched and the element-at-a-time semantics fails here.
    for backend in Backend::ALL {
        for (i, profile) in [
            BatchProfile::churn(),
            BatchProfile::grow(),
            BatchProfile::sequential(),
        ]
        .into_iter()
        .enumerate()
        {
            let mut dict: DynDict<u64, u64> = Dict::builder()
                .backend(backend)
                .seed(5_000 + i as u64)
                .block_elems(16)
                .fanout(16)
                .build();
            run_batch_differential(&mut dict, 0xACDC + i as u64, profile);
            dict.check_invariants();
        }
    }
}

#[test]
fn sharded_service_survives_mixed_batches_against_the_oracle() {
    // The same battery through the sharded facade (router + per-shard
    // group commit + k-way merged audits).
    for shards in [1usize, 3] {
        let mut service: ShardedDict<DynDict<u64, u64>> = Dict::builder()
            .backend(Backend::HiPma)
            .seed(77)
            .shards(shards)
            .build_sharded();
        run_batch_differential(&mut service, 0xF00D, BatchProfile::churn());
        for s in service.shards() {
            s.check_invariants();
        }
    }
}

#[test]
fn hi_pma_matches_the_vec_oracle() {
    for seed in [11u64, 22, 33] {
        let mut pma: HiPma<u64> = HiPma::new(seed);
        run_seq_differential(&mut pma, seed ^ 0xFF, SeqProfile::standard(1_200));
        pma.check_invariants();
    }
}

#[test]
fn classic_pma_matches_the_vec_oracle() {
    for seed in [44u64, 55, 66] {
        let mut pma: ClassicPma<u64> = ClassicPma::new();
        run_seq_differential(&mut pma, seed, SeqProfile::standard(1_200));
        pma.check_invariants();
    }
}
