//! Protocol battery for the `dict-server` front-end.
//!
//! Three layers of abuse, all against a live server on a loopback port:
//!
//! * **wire fuzz** — truncated frames, oversized length prefixes, garbage
//!   opcodes, and mid-frame disconnects must each produce a typed
//!   `BAD_REQUEST` (or a clean connection close), never a panic, a hang, or
//!   damage to *other* connections;
//! * **oracle** — pipelined mixed get/put/del streams, plus the barrier
//!   operations (`SUCC`/`PRED`/`LEN`), are replayed against a `BTreeMap`
//!   and every response must match — including reads of writes earlier in
//!   the same pipeline;
//! * **degradation** — a quarantined shard answers `DEGRADED` for point
//!   ops it owns and navigation it *could* own (the `try_successor` /
//!   `try_predecessor` routing), and recovers after `RESTORE`; a saturated
//!   queue sheds with `OVERLOADED`. Typed refusals, never silent wrong
//!   answers.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use anti_persistence::dict::{Backend, DictConfig, ServerConfig};
use dict_server::protocol::{decode_response, encode_request, encode_response, frame_sum};
use dict_server::{Client, ClientConfig, Request, Response, Server, ServerOptions, MAX_FRAME};

fn config() -> DictConfig {
    DictConfig {
        backend: Backend::HiPma,
        seed: 0xD1C7,
        shards: 4,
        ..DictConfig::default()
    }
}

fn spawn(config: DictConfig) -> Server {
    Server::spawn(
        "127.0.0.1:0",
        ServerOptions {
            config,
            persist: None,
        },
    )
    .expect("bind loopback")
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// Reads everything until EOF; the server must close, not hang.
fn drain(stream: &mut TcpStream) -> Vec<u8> {
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read to EOF");
    buf
}

/// A raw frame: length prefix plus enveloped body (valid checksum), so
/// arbitrary `body` bytes reach the request decoder itself.
fn frame(token: u64, body: &[u8]) -> Vec<u8> {
    let mut enveloped = token.to_be_bytes().to_vec();
    enveloped.extend_from_slice(&frame_sum(token, body).to_be_bytes());
    enveloped.extend_from_slice(body);
    let mut out = (enveloped.len() as u32).to_be_bytes().to_vec();
    out.extend_from_slice(&enveloped);
    out
}

/// A request frame ready for the wire: length prefix plus envelope.
fn request_frame(token: u64, req: &Request) -> Vec<u8> {
    let enveloped = encode_request(token, req);
    let mut out = (enveloped.len() as u32).to_be_bytes().to_vec();
    out.extend_from_slice(&enveloped);
    out
}

/// Parses the first enveloped response out of raw reply bytes.
fn parse_reply(reply: &[u8]) -> (u64, Response) {
    assert!(reply.len() >= 4, "no length prefix in {reply:?}");
    let len = u32::from_be_bytes([reply[0], reply[1], reply[2], reply[3]]) as usize;
    assert!(reply.len() >= 4 + len, "torn reply frame {reply:?}");
    decode_response(&reply[4..4 + len]).expect("reply decodes")
}

/// Reads exactly one response frame off a raw stream.
fn read_reply(stream: &mut TcpStream) -> (u64, Response) {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix).expect("reply prefix");
    let len = u32::from_be_bytes(prefix) as usize;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).expect("reply body");
    decode_response(&body).expect("reply decodes")
}

/// The malformed-input sweep: every abusive byte stream gets its own fresh
/// connection; afterwards a well-formed client still works, proving the
/// abuse never took the server down.
#[test]
fn wire_fuzz_never_panics_and_never_poisons_other_connections() {
    let mut server = spawn(config());
    let addr = server.addr();

    // Mid-frame disconnects: cut a valid PUT frame at every byte boundary.
    let put = request_frame(7, &Request::Put { key: 9, value: 9 });
    for cut in 0..put.len() {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(&put[..cut]).expect("partial write");
        drop(s); // disconnect mid-frame
    }

    // Single-byte corruption of a valid frame: every flipped byte past the
    // length prefix must refuse typed (the envelope checksum catches what
    // the opcode grammar alone would let through).
    for hurt_at in 4..put.len() {
        let mut hurt = put.clone();
        hurt[hurt_at] ^= 0x40;
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(&hurt).expect("write");
        s.shutdown(std::net::Shutdown::Write).expect("shutdown");
        let reply = drain(&mut s);
        let (_, resp) = parse_reply(&reply);
        assert!(
            matches!(resp, Response::BadRequest(_)),
            "byte {hurt_at} corrupt, got {resp:?}"
        );
    }

    // Truncated body: the length prefix promises more bytes than ever
    // arrive, then the write side shuts down. The server must give up on
    // the connection (EOF/close), not block forever waiting for the rest.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(&frame(1, &[0x01u8; 32])[..20]).expect("write");
        s.shutdown(std::net::Shutdown::Write).expect("shutdown");
        drain(&mut s);
    }

    // Oversized length prefix: rejected typed *without* reading the body.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(&((MAX_FRAME as u32) * 16).to_be_bytes())
            .expect("write");
        let reply = drain(&mut s);
        let (_, resp) = parse_reply(&reply);
        assert!(matches!(resp, Response::BadRequest(_)), "got {resp:?}");
    }

    // Garbage opcodes and malformed bodies (wrapped in a *valid* envelope
    // so they reach the request decoder): typed BAD_REQUEST, then close.
    let mut state = 0xF00Du64;
    for len in [0usize, 1, 2, 7, 9, 17, 64] {
        let body: Vec<u8> = (0..len).map(|_| (lcg(&mut state) | 0x40) as u8).collect();
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(&frame(9, &body)).expect("write");
        s.shutdown(std::net::Shutdown::Write).expect("shutdown");
        let reply = drain(&mut s);
        let (token, resp) = parse_reply(&reply);
        assert!(
            matches!(resp, Response::BadRequest(_)),
            "body {body:?} got {resp:?}"
        );
        // The refusal echoes the offending frame's token for correlation.
        assert_eq!(token, 9, "body {body:?}");
    }

    // The server survived all of it.
    let mut c = Client::connect(addr).expect("connect");
    c.ping().expect("ping after fuzz");
    c.put(1, 2).expect("put after fuzz");
    assert_eq!(c.get(1).expect("get after fuzz"), Some(2));
    server.shutdown();
}

/// Pipelined mixed streams vs a `BTreeMap` oracle, one connection: the
/// responses must arrive in request order and every read must observe all
/// earlier writes on the same connection, across epoch boundaries.
#[test]
fn pipelined_mixed_stream_matches_btreemap_oracle() {
    let mut cfg = config();
    // A tiny epoch forces many ops to share a batch; the oracle then
    // checks reads-of-this-epoch-writes through the overlay path.
    cfg.server = ServerConfig {
        epoch_micros: 100,
        epoch_ops: 64,
        ..cfg.server
    };
    let mut server = spawn(cfg);
    let mut c = Client::connect(server.addr()).expect("connect");

    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    let mut expected: Vec<Response> = Vec::new();
    let mut state = 0x5EEDu64;
    for i in 0..4_000u64 {
        let k = lcg(&mut state) % 257;
        let req = match lcg(&mut state) % 10 {
            0..=4 => {
                expected.push(match oracle.get(&k) {
                    Some(&v) => Response::Value(v),
                    None => Response::NotFound,
                });
                Request::Get { key: k }
            }
            5..=7 => {
                oracle.insert(k, i);
                expected.push(Response::Done);
                Request::Put { key: k, value: i }
            }
            8 => {
                oracle.remove(&k);
                expected.push(Response::Done);
                Request::Del { key: k }
            }
            _ => {
                // Barriers mixed into the pipeline: SUCC/PRED/LEN commit
                // the pending batch first, so they see every prior write.
                // successor = smallest key ≥ probe, predecessor = largest ≤.
                match lcg(&mut state) % 3 {
                    0 => {
                        expected.push(match oracle.range(k..).next() {
                            Some((&sk, &sv)) => Response::Entry(sk, sv),
                            None => Response::NotFound,
                        });
                        Request::Succ { key: k }
                    }
                    1 => {
                        expected.push(match oracle.range(..=k).next_back() {
                            Some((&pk, &pv)) => Response::Entry(pk, pv),
                            None => Response::NotFound,
                        });
                        Request::Pred { key: k }
                    }
                    _ => {
                        expected.push(Response::Count(oracle.len() as u64));
                        Request::Len
                    }
                }
            }
        };
        c.send(&req).expect("send");
        // Partial drains keep the pipeline deep but bounded.
        if i % 512 == 511 {
            c.flush().expect("flush");
            for (j, want) in expected.drain(..).enumerate() {
                let got = c.recv().expect("recv");
                assert_eq!(got, want, "op {} of this drain", j);
            }
        }
    }
    c.flush().expect("flush");
    for want in expected.drain(..) {
        assert_eq!(c.recv().expect("recv"), want);
    }
    server.shutdown();
}

/// Quarantine semantics over the wire: point ops on the down shard refuse
/// typed, navigation that could land there refuses typed, exact hits and
/// provably-complete answers still flow, and `RESTORE` heals it — all via
/// protocol ops, exercising the `&self` restore path under the server's
/// read lock.
#[test]
fn quarantined_shard_refuses_typed_over_the_wire_and_restores() {
    let mut server = spawn(config());
    let mut c = Client::connect(server.addr()).expect("connect");

    // Keys 0, 10, …, 630 spread over 4 shards by ShardRouter. The gaps
    // let navigation probes distinguish exact hits (provably complete even
    // with a shard down) from between-key probes (the down shard could own
    // the true answer).
    for k in 0..64u64 {
        c.put(k * 10, k + 100).expect("put");
    }

    let quarantine = |c: &mut Client, shard: u64| {
        let resp = c
            .request(&Request::Quarantine {
                shard,
                reason: "battery".to_string(),
            })
            .expect("quarantine");
        assert_eq!(resp, Response::Done);
    };
    let restore = |c: &mut Client, shard: u64| {
        assert_eq!(
            c.request(&Request::Restore { shard }).expect("restore"),
            Response::Done
        );
    };

    quarantine(&mut c, 2);
    let (shards, down) = c.health().expect("health");
    assert_eq!(shards, 4);
    assert_eq!(down.len(), 1);
    assert_eq!(down[0].0, 2);
    assert!(down[0].1.contains("battery"), "{:?}", down[0].1);

    let mut degraded_gets = 0usize;
    let mut exact_hits = 0usize;
    let mut degraded_navs = 0usize;
    for k in 0..64u64 {
        match c.request(&Request::Get { key: k * 10 }).expect("get") {
            Response::Degraded { reason, .. } => {
                degraded_gets += 1;
                assert!(reason.contains("battery"), "{reason}");
                // Writes to the same key must refuse too — a dropped write
                // would be a silent wrong answer later.
                match c
                    .request(&Request::Put {
                        key: k * 10,
                        value: 0,
                    })
                    .expect("put")
                {
                    Response::Degraded { .. } => {}
                    other => panic!("put on down shard answered {other:?}"),
                }
            }
            Response::Value(v) => assert_eq!(v, k + 100),
            other => panic!("get({k}) answered {other:?}"),
        }
        // An exact hit on a healthy shard is provably complete (each key
        // lives on exactly one shard); it must flow even while shard 2 is
        // down. A hit owned by the down shard, or a between-key probe (the
        // true answer could live on the down shard), must refuse.
        match c.request(&Request::Succ { key: k * 10 }).expect("succ") {
            Response::Entry(sk, sv) => {
                assert_eq!((sk, sv), (k * 10, k + 100), "probe {k}");
                exact_hits += 1;
            }
            Response::Degraded { .. } => degraded_navs += 1,
            other => panic!("succ({}) answered {other:?}", k * 10),
        }
        match c.request(&Request::Succ { key: k * 10 + 5 }).expect("succ") {
            Response::Degraded { .. } => degraded_navs += 1,
            other => panic!(
                "between-key succ({}) must refuse while a shard is down, got {other:?}",
                k * 10 + 5
            ),
        }
    }
    assert!(degraded_gets > 0, "shard 2 owned no probed key");
    assert!(exact_hits > 0, "no exact-hit navigation flowed");
    assert!(
        degraded_navs > 0,
        "no navigation could have landed on shard 2"
    );
    // Past-the-end and between-key pred probes could be owned by the down
    // shard: both must refuse.
    assert!(matches!(
        c.request(&Request::Succ { key: 1 << 40 }).expect("succ"),
        Response::Degraded { .. }
    ));
    assert!(matches!(
        c.request(&Request::Pred { key: 5 }).expect("pred"),
        Response::Degraded { .. }
    ));

    restore(&mut c, 2);
    assert!(c.health().expect("health").1.is_empty());
    for k in 0..64u64 {
        assert_eq!(c.get(k * 10).expect("get"), Some(k + 100), "after restore");
    }

    // Out-of-range shard indices refuse typed instead of panicking.
    assert!(matches!(
        c.request(&Request::Quarantine {
            shard: 99,
            reason: "x".to_string()
        })
        .expect("quarantine"),
        Response::BadRequest(_)
    ));
    server.shutdown();
}

/// Backpressure: a queue bound of 1 under a long epoch sheds pipelined
/// requests with `OVERLOADED` — a typed refusal the client can retry —
/// while everything admitted is answered correctly.
#[test]
fn saturated_queues_shed_typed_overloaded() {
    let mut cfg = config();
    cfg.shards = 1;
    cfg.server = ServerConfig {
        epoch_micros: 200_000, // 200ms: the engine stays asleep while we pile on
        epoch_ops: 10_000,
        queue_bound: 1,
        ..cfg.server
    };
    let mut server = spawn(cfg);
    let mut c = Client::connect(server.addr()).expect("connect");

    const N: u64 = 50;
    for k in 0..N {
        c.send(&Request::Put { key: k, value: k }).expect("send");
    }
    c.flush().expect("flush");
    let mut done = 0usize;
    let mut shed = 0usize;
    for _ in 0..N {
        match c.recv().expect("recv") {
            Response::Done => done += 1,
            Response::Overloaded => shed += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(
        shed > 0,
        "bound-1 queue never shed across {N} pipelined puts"
    );
    assert!(done > 0, "admitted requests must still complete");
    server.shutdown();
}

/// Shutdown answers every in-flight request: a pipeline cut off by server
/// shutdown receives only typed responses (possibly `UNAVAILABLE`), and the
/// stream ends with EOF rather than a hang or a torn frame.
#[test]
fn shutdown_answers_or_refuses_every_inflight_request() {
    let mut server = spawn(config());
    let mut c = Client::connect(server.addr()).expect("connect");
    for k in 0..256u64 {
        c.send(&Request::Put { key: k, value: k }).expect("send");
    }
    c.flush().expect("flush");
    server.shutdown();
    let mut answered = 0usize;
    loop {
        match c.recv() {
            Ok(Response::Done) | Ok(Response::Unavailable(_)) => answered += 1,
            Ok(other) => panic!("unexpected {other:?}"),
            Err(_) => break, // clean EOF once the server finishes draining
        }
        if answered == 256 {
            break;
        }
    }
    // Anything unanswered must be due to the connection closing — never a
    // wrong answer; and the server must not leave the writer mid-frame.
}

/// The response-direction mirror of the wire fuzz: a fake server answers a
/// real client's GET with every truncation and every single-byte
/// corruption of a valid `VALUE` frame. Each abuse must surface as a
/// *typed* client error — never `Ok` with a wrong value, never a panic,
/// never a hang.
#[test]
fn response_truncation_and_corruption_surface_typed_on_the_client() {
    // The canonical response a fresh anonymous client would be owed for
    // its first request (token 1 — the client's counter starts there).
    let canonical = {
        let enveloped = encode_response(1, &Response::Value(42));
        let mut out = (enveloped.len() as u32).to_be_bytes().to_vec();
        out.extend_from_slice(&enveloped);
        out
    };

    // Every proper prefix, plus every single-byte corruption.
    let mut abuses: Vec<Vec<u8>> = (0..canonical.len())
        .map(|cut| canonical[..cut].to_vec())
        .collect();
    for hurt_at in 0..canonical.len() {
        let mut hurt = canonical.clone();
        hurt[hurt_at] ^= 0x10;
        abuses.push(hurt);
    }

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().expect("addr");
    let total = abuses.len();
    let fake = std::thread::spawn(move || {
        for abuse in abuses {
            let (mut s, _) = listener.accept().expect("accept");
            // Read the client's one request frame, then answer abusively
            // and close.
            let mut prefix = [0u8; 4];
            s.read_exact(&mut prefix).expect("request prefix");
            let len = u32::from_be_bytes(prefix) as usize;
            let mut body = vec![0u8; len];
            s.read_exact(&mut body).expect("request body");
            s.write_all(&abuse).expect("write abuse");
        }
    });

    let cfg = ClientConfig {
        read_timeout: Duration::from_millis(300),
        ..ClientConfig::default()
    };
    for case in 0..total {
        let mut c = Client::connect_with(addr, cfg).expect("connect");
        match c.request(&Request::Get { key: 1 }) {
            Err(_) => {} // typed: Decode, Timeout, ServerReset, Desync, …
            Ok(resp) => panic!("abuse case {case} produced an answer: {resp:?}"),
        }
    }
    fake.join().expect("fake server");
}

/// Dedup-window eviction over the wire: with a window of 4, a token reused
/// five mutations later has been evicted (the resend re-applies), while a
/// token still inside the window is suppressed and its retained response
/// replayed.
#[test]
fn dedup_window_suppresses_inside_and_evicts_past_the_window() {
    let mut cfg = config();
    cfg.server = ServerConfig {
        dedup_window: 4,
        ..cfg.server
    };
    let mut server = spawn(cfg);
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");

    let roundtrip = |s: &mut TcpStream, token: u64, req: &Request| -> Response {
        let enveloped = encode_request(token, req);
        let mut out = (enveloped.len() as u32).to_be_bytes().to_vec();
        out.extend_from_slice(&enveloped);
        s.write_all(&out).expect("write");
        let (got, resp) = read_reply(s);
        assert_eq!(got, token, "response correlates");
        resp
    };

    // Bind an identity, then burn tokens 2..=6 on five distinct PUTs —
    // token 2 falls out of the 4-deep window when token 6 lands.
    assert_eq!(
        roundtrip(&mut s, 1, &Request::Hello { client: 77 }),
        Response::Done
    );
    for t in 2..=6u64 {
        assert_eq!(
            roundtrip(
                &mut s,
                t,
                &Request::Put {
                    key: t,
                    value: 100 + t
                }
            ),
            Response::Done
        );
    }

    // Token 2 was evicted: its "retry" with a different payload applies.
    assert_eq!(
        roundtrip(&mut s, 2, &Request::Put { key: 2, value: 999 }),
        Response::Done
    );
    assert_eq!(
        roundtrip(&mut s, 100, &Request::Get { key: 2 }),
        Response::Value(999),
        "evicted token re-applied"
    );

    // Token 6 is still inside the window: the retained response replays
    // and the conflicting payload is NOT applied.
    assert_eq!(
        roundtrip(&mut s, 6, &Request::Put { key: 6, value: 0 }),
        Response::Done
    );
    assert_eq!(
        roundtrip(&mut s, 101, &Request::Get { key: 6 }),
        Response::Value(106),
        "in-window token suppressed"
    );

    // Anonymous connections (no HELLO) get no dedup: the same token
    // re-applies freely.
    let mut anon = TcpStream::connect(server.addr()).expect("connect anon");
    anon.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    assert_eq!(
        roundtrip(&mut anon, 5, &Request::Put { key: 50, value: 1 }),
        Response::Done
    );
    assert_eq!(
        roundtrip(&mut anon, 5, &Request::Put { key: 50, value: 2 }),
        Response::Done
    );
    assert_eq!(
        roundtrip(&mut anon, 6, &Request::Get { key: 50 }),
        Response::Value(2),
        "anonymous retries are not deduped"
    );
    server.shutdown();
}
