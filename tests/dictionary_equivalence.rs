//! Cross-crate integration tests: every dictionary in the workspace must
//! agree with a reference `BTreeMap` (and therefore with each other) on the
//! same operation traces.

use anti_persistence::prelude::*;
use std::collections::BTreeMap;
use workloads::{mixed, random_inserts, replay, Op};

/// Replays a trace against a dictionary and a reference map, checking every
/// query result along the way, then compares the final contents.
fn check_against_model<D>(dict: &mut D, trace: &workloads::Trace)
where
    D: Dictionary<Key = u64, Value = u64>,
{
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in &trace.ops {
        match *op {
            Op::Insert(k, v) => assert_eq!(dict.insert(k, v), model.insert(k, v)),
            Op::Delete(k) => assert_eq!(dict.remove(&k), model.remove(&k)),
            Op::Get(k) => assert_eq!(dict.get(&k), model.get(&k).copied()),
            Op::Range(a, b) => assert_eq!(
                dict.range(&a, &b),
                model
                    .range(a..=b)
                    .map(|(&k, &v)| (k, v))
                    .collect::<Vec<_>>()
            ),
        }
    }
    assert_eq!(
        dict.to_sorted_vec(),
        model.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
    );
    assert_eq!(dict.len(), model.len());
}

#[test]
fn cob_btree_matches_model_on_mixed_workload() {
    let trace = mixed(8_000, 3_000, 0.55, 1);
    check_against_model(&mut CobBTree::<u64, u64>::new(10), &trace);
}

#[test]
fn hi_skiplist_matches_model_on_mixed_workload() {
    let trace = mixed(8_000, 3_000, 0.55, 2);
    check_against_model(
        &mut ExternalSkipList::<u64, u64>::history_independent(32, 0.5, 11),
        &trace,
    );
}

#[test]
fn folklore_bskiplist_matches_model_on_mixed_workload() {
    let trace = mixed(6_000, 2_000, 0.55, 3);
    check_against_model(
        &mut ExternalSkipList::<u64, u64>::folklore_b(32, 12),
        &trace,
    );
}

#[test]
fn btree_matches_model_on_mixed_workload() {
    let trace = mixed(8_000, 3_000, 0.55, 4);
    check_against_model(&mut BTree::<u64, u64>::new(32), &trace);
}

#[test]
fn all_dictionaries_agree_with_each_other() {
    let trace = mixed(5_000, 1_500, 0.6, 5);
    let mut cob: CobBTree<u64, u64> = CobBTree::new(20);
    let mut skip: ExternalSkipList<u64, u64> = ExternalSkipList::history_independent(16, 0.5, 21);
    let mut bsk: ExternalSkipList<u64, u64> = ExternalSkipList::folklore_b(16, 22);
    let mut bt: BTree<u64, u64> = BTree::new(16);
    replay(&trace, &mut cob);
    replay(&trace, &mut skip);
    replay(&trace, &mut bsk);
    replay(&trace, &mut bt);
    let reference = bt.to_sorted_vec();
    assert_eq!(cob.to_sorted_vec(), reference);
    assert_eq!(skip.to_sorted_vec(), reference);
    assert_eq!(bsk.to_sorted_vec(), reference);
}

#[test]
fn bulk_load_then_point_queries() {
    let load = random_inserts(20_000, 6);
    let mut cob: CobBTree<u64, u64> = CobBTree::new(30);
    let mut bt: BTree<u64, u64> = BTree::new(64);
    replay(&load, &mut cob);
    replay(&load, &mut bt);
    assert_eq!(cob.len(), 20_000);
    for op in load.ops.iter().step_by(97) {
        if let Op::Insert(k, _) = op {
            assert_eq!(cob.get(k), bt.get(k));
            assert!(cob.get(k).is_some());
        }
    }
    cob.check_invariants();
    bt.check_invariants();
}

#[test]
fn pma_rank_interface_agrees_with_vec() {
    // The rank-addressed interface (the paper's own PMA API) against a Vec.
    let mut hi: HiPma<u64> = HiPma::new(40);
    let mut classic: ClassicPma<u64> = ClassicPma::new();
    let mut model: Vec<u64> = Vec::new();
    let mut rng_state = 12345u64;
    let mut next = || {
        // xorshift for a dependency-free deterministic stream
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    for step in 0..6_000u64 {
        let r = next();
        if !model.is_empty() && r % 10 < 3 {
            let rank = (r % model.len() as u64) as usize;
            let expected = model.remove(rank);
            assert_eq!(hi.delete(rank).unwrap(), expected);
            assert_eq!(classic.delete(rank).unwrap(), expected);
        } else {
            let rank = (r % (model.len() as u64 + 1)) as usize;
            model.insert(rank, step);
            hi.insert(rank, step).unwrap();
            classic.insert(rank, step).unwrap();
        }
    }
    assert_eq!(hi.range_query(0, model.len() - 1).unwrap(), model);
    assert_eq!(classic.range_query(0, model.len() - 1).unwrap(), model);
}
