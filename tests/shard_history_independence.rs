//! History independence of the *sharded* dictionary service.
//!
//! `tests/history_independence.rs` establishes the single-structure claim:
//! two operation sequences reaching the same logical state induce the same
//! distribution over memory representations. This battery extends the claim
//! to the deployment shape the ROADMAP targets — `S` hash-partitioned
//! shards fed by batched, multi-threaded writes — and adds the two new ways
//! a sharded service could leak history that a single structure cannot:
//!
//! 1. **Batch partitioning**: how the caller split the operation stream
//!    into `multi_put` batches must not show up in the layout.
//! 2. **Thread scheduling**: whether batches executed on scoped worker
//!    threads or inline (and in whatever interleaving the scheduler chose)
//!    must not show up either.
//!
//! Methodology is identical to the single-structure battery: build the same
//! final contents through different histories over many independent seeds,
//! fingerprint the layout (first-occupied-slot bucket of a shard's
//! occupancy bitmap), and χ²-compare the fingerprint distributions. Run
//! across three shard counts, per the acceptance criteria.

use anti_persistence::dict::{Backend, Dict, DynDict};
use anti_persistence::prelude::*;
use hi_common::stats::chi2::chi2_gof;

const KEYS: u64 = 240;
const EXTRA: u64 = 48;
const TRIALS: u64 = 300;
const BUCKETS: usize = 6;

/// The contents every history converges to: keys `{0, 3, …, 3·(KEYS−1)}`.
fn pairs_ascending() -> Vec<(u64, u64)> {
    (0..KEYS).map(|k| (k * 3, k)).collect()
}

fn service(seed: u64, shards: usize) -> ShardedDict<DynDict<u64, u64>> {
    Dict::builder()
        .backend(Backend::HiPma)
        .seed(seed)
        .shards(shards)
        .build_sharded()
}

/// First-occupied-slot bucket of shard 0's occupancy bitmap — the same
/// coarse layout fingerprint the single-structure χ² test uses. Shard 0's
/// contents are identical across histories under a fixed seed (the router
/// is part of the seed), so its layout distribution is directly comparable.
fn layout_bucket(d: &ShardedDict<DynDict<u64, u64>>) -> usize {
    let occupancy = d.shards()[0]
        .occupancy()
        .expect("HiPma shards expose occupancy");
    let pos = occupancy.iter().position(|&b| b).unwrap_or(0);
    (pos * BUCKETS / occupancy.len().max(1)).min(BUCKETS - 1)
}

/// History A: ascending single-key inserts.
fn build_ascending(seed: u64, shards: usize) -> ShardedDict<DynDict<u64, u64>> {
    let mut d = service(seed, shards);
    for (k, v) in pairs_ascending() {
        d.insert(k, v);
    }
    d
}

/// History B: descending single-key inserts plus an insert-then-delete
/// episode — the classic history-revealing workload.
fn build_descending_with_churn(seed: u64, shards: usize) -> ShardedDict<DynDict<u64, u64>> {
    let mut d = service(seed, shards);
    for (k, v) in pairs_ascending().into_iter().rev() {
        d.insert(k, v);
    }
    for k in 0..EXTRA {
        d.insert(3 * KEYS + k, k);
    }
    for k in 0..EXTRA {
        d.remove(&(3 * KEYS + k));
    }
    d
}

/// History C: interleaved arrival order (evens then odds), delivered as
/// small `multi_put` batches forced onto worker threads.
fn build_threaded_batches(seed: u64, shards: usize) -> ShardedDict<DynDict<u64, u64>> {
    let mut d = service(seed, shards);
    d.set_parallel_threshold(0); // every batch fans out to scoped threads
    let ascending = pairs_ascending();
    let mut interleaved: Vec<(u64, u64)> = ascending.iter().copied().step_by(2).collect();
    interleaved.extend(ascending.iter().copied().skip(1).step_by(2));
    for chunk in interleaved.chunks(97) {
        d.multi_put(chunk.to_vec());
    }
    d
}

/// History D: a different arrival order (back half, then front half) with a
/// different batch partitioning, executed on the inline (unthreaded) path.
fn build_sequential_batches(seed: u64, shards: usize) -> ShardedDict<DynDict<u64, u64>> {
    let mut d = service(seed, shards);
    d.set_parallel_threshold(usize::MAX); // never spawn threads
    let ascending = pairs_ascending();
    let half = ascending.len() / 2;
    let mut rotated = ascending[half..].to_vec();
    rotated.extend_from_slice(&ascending[..half]);
    for chunk in rotated.chunks(13) {
        d.multi_put(chunk.to_vec());
    }
    d
}

/// χ²-compares two fingerprint histograms, treating A (scaled) as the
/// expected distribution and merging tiny buckets, exactly like the
/// single-structure battery.
fn assert_same_distribution(hist_a: &[u64], hist_b: &[u64], label: &str) {
    let mut observed = Vec::new();
    let mut expected = Vec::new();
    for (a, b) in hist_a.iter().zip(hist_b) {
        if *a >= 20 {
            expected.push(*a as f64);
            observed.push(*b);
        }
    }
    if observed.len() >= 2 {
        let outcome = chi2_gof(&observed, &expected);
        assert!(
            outcome.p_value > 1e-4,
            "{label}: layout distributions differ: A = {hist_a:?}, B = {hist_b:?}, p = {}",
            outcome.p_value
        );
    } else {
        assert_eq!(hist_a, hist_b, "{label}: degenerate histograms must agree");
    }
}

#[test]
fn sharded_layout_distribution_is_history_and_schedule_free() {
    // Acceptance: the χ² comparison must pass across ≥ 3 shard counts.
    for shards in [2usize, 3, 5] {
        let mut hist = [[0u64; BUCKETS]; 4];
        for t in 0..TRIALS {
            let seed = 9_000_000 + t * 7 + shards as u64;
            let builds = [
                build_ascending(seed, shards),
                build_descending_with_churn(seed, shards),
                build_threaded_batches(seed, shards),
                build_sequential_batches(seed, shards),
            ];
            let reference = builds[0].to_sorted_vec();
            for (h, d) in hist.iter_mut().zip(&builds) {
                assert_eq!(d.to_sorted_vec(), reference, "contents must agree");
                h[layout_bucket(d)] += 1;
            }
        }
        assert_same_distribution(
            &hist[0],
            &hist[1],
            &format!("S={shards}: ascending vs descending+churn"),
        );
        assert_same_distribution(
            &hist[0],
            &hist[2],
            &format!("S={shards}: ascending vs threaded interleaved batches"),
        );
        assert_same_distribution(
            &hist[0],
            &hist[3],
            &format!("S={shards}: ascending vs sequential rotated batches"),
        );
    }
}

#[test]
fn router_assignment_is_load_free_and_balanced() {
    // The router must place the same key on the same shard no matter what
    // else was inserted before it (assignment is f(key, seed, S), never
    // load) — and the partition must stay roughly balanced so the service
    // scales. Both checks across the same three shard counts.
    for shards in [2usize, 3, 5] {
        let empty = service(77, shards);
        let mut loaded = service(77, shards);
        loaded.multi_put((10_000..20_000u64).map(|k| (k, k)));
        let mut counts = vec![0usize; shards];
        for k in 0..3_000u64 {
            let home = empty.shard_of(&k);
            assert_eq!(
                home,
                loaded.shard_of(&k),
                "S={shards}: key {k} moved because of unrelated load"
            );
            counts[home] += 1;
        }
        let expected = 3_000 / shards;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "S={shards}: shard {i} holds {c} of 3000 keys: {counts:?}"
            );
        }
    }
}

#[test]
fn shard_density_distribution_survives_batched_churn() {
    // Sharded form of the secure-delete test: the per-shard slot density
    // (occupied / total slots, which tracks the secret capacity parameter
    // N̂) must be distributed identically whether the contents arrived
    // clean or through a threaded batch storm with an insert-then-delete
    // episode. Compared as total-variation distance between the two
    // empirical density histograms, like the skip-list height test.
    let shards = 3usize;
    let trials = 1_000u64;
    let buckets = 16usize;
    let mut clean_hist = vec![0u64; buckets];
    let mut churn_hist = vec![0u64; buckets];
    let density_bucket = |d: &ShardedDict<DynDict<u64, u64>>| {
        let occupancy = d.shards()[0].occupancy().expect("HiPma occupancy");
        let occupied = occupancy.iter().filter(|&&b| b).count();
        ((occupied * buckets) / occupancy.len().max(1)).min(buckets - 1)
    };
    for t in 0..trials {
        let seed = 4_000_000 + t;
        let mut clean = service(seed, shards);
        clean.set_parallel_threshold(0);
        clean.multi_put((0..KEYS).map(|k| (k * 3, k)));
        clean_hist[density_bucket(&clean)] += 1;

        let mut churn = service(seed + 500_000, shards);
        churn.set_parallel_threshold(0);
        churn.multi_put((0..KEYS).map(|k| (k * 3, k)));
        churn.multi_put((0..EXTRA).map(|k| (3 * KEYS + k, k)));
        churn.multi_remove((0..EXTRA).map(|k| 3 * KEYS + k).collect::<Vec<_>>());
        churn_hist[density_bucket(&churn)] += 1;
    }
    let tv: f64 = clean_hist
        .iter()
        .zip(&churn_hist)
        .map(|(&a, &b)| (a as f64 - b as f64).abs())
        .sum::<f64>()
        / (2.0 * trials as f64);
    assert!(
        tv < 0.1,
        "density distributions differ: TV = {tv}, clean = {clean_hist:?}, churn = {churn_hist:?}"
    );
}
