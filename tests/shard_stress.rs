//! Barrier-synchronized multi-threaded batch storm against the sharded
//! service, cross-checked op-for-op against the `BTreeMap` oracle.
//!
//! Shape of each round:
//!
//! 1. **Writer storm**: `WRITERS` threads, one per disjoint key range,
//!    generate seeded batches behind a [`Barrier`] (so generation is
//!    genuinely concurrent), which are then applied through the service's
//!    batched write path with the parallel threshold forced to 0 — every
//!    batch fans out to scoped per-shard worker threads.
//! 2. **Reader storm**: `READERS` threads share the service immutably
//!    behind another barrier and hammer `multi_get`, merged `range_iter`
//!    scans and ordered navigation, each checked against the oracle.
//!
//! Everything derives from one root seed, so a failure reproduces exactly;
//! the failure messages carry the round and thread indices.

use std::collections::BTreeMap;
use std::sync::Barrier;
use std::thread;

use anti_persistence::dict::{Backend, Dict, DynDict};
use anti_persistence::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WRITERS: usize = 4;
const READERS: usize = 4;
const ROUNDS: usize = 5;
const OPS_PER_WRITER: usize = 1_500;
/// Each writer owns keys `[w·RANGE, (w+1)·RANGE)`.
const RANGE: u64 = 100_000;

/// A writer round's puts plus removes of keys the writer may have inserted
/// in earlier rounds.
type Batch = (Vec<(u64, u64)>, Vec<u64>);

/// One writer's seeded batch for one round.
fn writer_batch(root_seed: u64, round: usize, writer: usize) -> Batch {
    let mut rng = StdRng::seed_from_u64(
        root_seed ^ (round as u64).wrapping_mul(0x9E37_79B9) ^ (writer as u64) << 32,
    );
    let base = writer as u64 * RANGE;
    let mut puts = Vec::with_capacity(OPS_PER_WRITER);
    let mut removes = Vec::new();
    for i in 0..OPS_PER_WRITER {
        let key = base + rng.gen_range(0..RANGE);
        if i % 5 == 4 {
            removes.push(key);
        } else {
            puts.push((key, rng.gen::<u64>()));
        }
    }
    (puts, removes)
}

fn run_storm(backend: Backend, shards: usize, root_seed: u64) {
    let mut service: ShardedDict<DynDict<u64, u64>> = Dict::builder()
        .backend(backend)
        .seed(root_seed)
        .shards(shards)
        .build_sharded();
    service.set_parallel_threshold(0); // every batch takes the threaded path
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();

    for round in 0..ROUNDS {
        // --- writer storm: concurrent seeded generation, barrier start ---
        let barrier = Barrier::new(WRITERS);
        let batches: Vec<Batch> = thread::scope(|s| {
            let handles: Vec<_> = (0..WRITERS)
                .map(|w| {
                    let barrier = &barrier;
                    s.spawn(move || {
                        barrier.wait();
                        writer_batch(root_seed, round, w)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("writer thread panicked"))
                .collect()
        });

        // Apply in writer order (deterministic), each batch fanning out to
        // per-shard worker threads; mirror into the oracle identically.
        for (w, (puts, removes)) in batches.into_iter().enumerate() {
            service.multi_put(puts.clone());
            for (k, v) in puts {
                oracle.insert(k, v);
            }
            let removed = service.multi_remove(removes.clone());
            let oracle_removed = removes
                .iter()
                .filter(|k| oracle.remove(k).is_some())
                .count();
            assert_eq!(
                removed, oracle_removed,
                "backend {backend}, round {round}, writer {w}: remove counts diverged"
            );
        }
        assert_eq!(
            service.len(),
            oracle.len(),
            "backend {backend}, round {round}: len diverged"
        );

        // --- reader storm: shared service, barrier-synchronized threads ---
        let barrier = Barrier::new(READERS);
        thread::scope(|s| {
            for r in 0..READERS {
                let service = &service;
                let oracle = &oracle;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    let mut rng = StdRng::seed_from_u64(
                        root_seed ^ 0xFEED ^ (round as u64 * READERS as u64 + r as u64),
                    );
                    // Batched point reads, answered in input order.
                    let keys: Vec<u64> = (0..800)
                        .map(|_| rng.gen_range(0..WRITERS as u64 * RANGE))
                        .collect();
                    let got = service.multi_get(&keys);
                    for (k, v) in keys.iter().zip(got) {
                        assert_eq!(
                            v.as_ref(),
                            oracle.get(k),
                            "backend {backend}, round {round}, reader {r}: get({k})"
                        );
                    }
                    // Merged range scans over random windows.
                    for _ in 0..20 {
                        let lo = rng.gen_range(0..WRITERS as u64 * RANGE);
                        let hi = lo + rng.gen_range(0..RANGE / 4);
                        let scanned: Vec<(u64, u64)> =
                            service.range_iter(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                        let expected: Vec<(u64, u64)> =
                            oracle.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                        assert_eq!(
                            scanned, expected,
                            "backend {backend}, round {round}, reader {r}: range {lo}..={hi}"
                        );
                    }
                    // Ordered navigation across shard boundaries.
                    for _ in 0..100 {
                        let probe = rng.gen_range(0..WRITERS as u64 * RANGE);
                        assert_eq!(
                            service.successor(&probe),
                            oracle.range(probe..).next().map(|(k, v)| (*k, *v)),
                            "backend {backend}, round {round}, reader {r}: successor({probe})"
                        );
                        assert_eq!(
                            service.predecessor(&probe),
                            oracle.range(..=probe).next_back().map(|(k, v)| (*k, *v)),
                            "backend {backend}, round {round}, reader {r}: predecessor({probe})"
                        );
                    }
                });
            }
        });
    }

    // Final audit: merged full scan equals the oracle, invariants hold.
    assert_eq!(
        service.to_sorted_vec(),
        oracle.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>(),
        "backend {backend}: final contents diverged"
    );
    for (i, shard) in service.shards().iter().enumerate() {
        shard.check_invariants();
        assert!(
            shard.len() > 0,
            "backend {backend}: shard {i} never received a key — router imbalance"
        );
    }
}

#[test]
fn batch_storm_matches_oracle_on_hi_pma_shards() {
    run_storm(Backend::HiPma, 4, 0x57AE_5501);
}

#[test]
fn batch_storm_matches_oracle_on_btree_shards() {
    run_storm(Backend::BTree, 5, 0x57AE_5502);
}

#[test]
fn batch_storm_matches_oracle_on_hi_skiplist_shards() {
    run_storm(Backend::HiSkipList, 3, 0x57AE_5503);
}
