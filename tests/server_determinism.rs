//! Determinism and crash batteries for the `dict-server` front-end.
//!
//! The network pipeline adds scheduling, epoch timing, client interleaving
//! and backpressure between the wire and the dictionary — none of which may
//! reach the at-rest bytes. Two batteries pin that:
//!
//! * **flush determinism** — after a concurrent multi-client run, the
//!   flushed on-disk image is *byte-identical* to a fresh single-threaded
//!   dictionary holding the same final contents, flushed at the same seed
//!   and block size. Epoch boundaries only partition the arrival-ordered
//!   stream into batches, the exact degree of freedom the batch engine's
//!   layout is invariant under, so the image is `f(contents, seed)` no
//!   matter how many clients raced.
//! * **kill-the-server-mid-flush** — a `WriteFuse` armed on the persistent
//!   store trips partway through a client-initiated `FLUSH`. The client
//!   sees a typed `UNAVAILABLE` (never a fake generation), and reopening
//!   the file recovers *whole-old or whole-new* contents — the journaled
//!   commit's atomicity holds when the flush is driven over the network.

use std::collections::BTreeMap;
use std::net::SocketAddr;

use anti_persistence::dict::{Backend, Dict, DictConfig};
use anti_persistence::prelude::*;
use block_store::temp_path;
use dict_server::{Client, Request, Response, Server, ServerOptions};

const SEED: u64 = 0x5E4E4;
const CLIENTS: u64 = 4;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

fn config() -> DictConfig {
    DictConfig {
        backend: Backend::HiPma,
        seed: SEED,
        shards: 4,
        ..DictConfig::default()
    }
}

fn open(path: &std::path::Path) -> PersistentDict {
    // 512-byte blocks keep flush write counts small (fast fuse sweeps);
    // no_sync because the process survives the injected crash.
    Dict::builder()
        .backend(Backend::HiPma)
        .seed(SEED)
        .build_persistent_with(path, StoreOptions::new(512).no_sync())
        .unwrap()
}

fn drop_paths(data: &std::path::Path, journal: &std::path::Path) {
    let _ = std::fs::remove_file(data);
    let _ = std::fs::remove_file(journal);
}

/// Client `c`'s deterministic op script over its private residue class
/// (keys ≡ c mod CLIENTS, so concurrent scripts commute and the final
/// contents are known in advance).
fn script(c: u64) -> Vec<Request> {
    let mut state = (c + 1).wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut ops = Vec::new();
    for i in 0..600u64 {
        let k = c + CLIENTS * (lcg(&mut state) % 500);
        match lcg(&mut state) % 10 {
            0..=5 => ops.push(Request::Put {
                key: k,
                value: i * CLIENTS + c,
            }),
            6..=7 => ops.push(Request::Del { key: k }),
            // Reads exercise the overlay/batch split concurrently with the
            // writes; their answers don't affect the final image.
            _ => ops.push(Request::Get { key: k }),
        }
    }
    ops
}

/// The final contents all four scripts leave behind, computed sequentially.
fn oracle() -> BTreeMap<u64, u64> {
    let mut map = BTreeMap::new();
    for c in 0..CLIENTS {
        for op in script(c) {
            match op {
                Request::Put { key, value } => {
                    map.insert(key, value);
                }
                Request::Del { key } => {
                    map.remove(&key);
                }
                _ => {}
            }
        }
    }
    map
}

fn run_script(addr: SocketAddr, c: u64) {
    let mut client = Client::connect(addr).expect("connect");
    let ops = script(c);
    let mut pending = 0usize;
    for op in &ops {
        client.send(op).expect("send");
        pending += 1;
        if pending == 64 {
            client.flush().expect("flush");
            for _ in 0..pending {
                match client.recv().expect("recv") {
                    Response::Done | Response::Value(_) | Response::NotFound => {}
                    other => panic!("client {c}: unexpected {other:?}"),
                }
            }
            pending = 0;
        }
    }
    client.flush().expect("flush");
    for _ in 0..pending {
        client.recv().expect("recv");
    }
}

#[test]
fn concurrent_multi_client_run_flushes_the_single_threaded_image() {
    // Concurrent run: four pipelined clients race their scripts, then one
    // of them asks the server to flush.
    let served_path = temp_path("server-det-served");
    let served = open(&served_path);
    let (served_data, served_journal) = (
        served.store().path().to_path_buf(),
        served.store().journal_path().to_path_buf(),
    );
    let mut server = Server::spawn(
        "127.0.0.1:0",
        ServerOptions {
            config: config(),
            persist: Some(served),
        },
    )
    .expect("bind loopback");
    let addr = server.addr();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| std::thread::spawn(move || run_script(addr, c)))
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let mut c = Client::connect(addr).expect("connect");
    let generation = c.flush_store().expect("server flush");
    assert!(generation > 0);
    server.shutdown();
    drop(server);

    // Single-threaded equivalent: a fresh dictionary fed the same final
    // contents (in plain key order — arrival history must not matter),
    // flushed once at the same seed and block size.
    let expected = oracle();
    assert!(expected.len() > 100, "scripts left too little behind");
    let reference_path = temp_path("server-det-reference");
    let mut reference = open(&reference_path);
    for (&k, &v) in &expected {
        reference.insert(k, v);
    }
    reference.flush().expect("reference flush");
    let (ref_data, ref_journal) = (
        reference.store().path().to_path_buf(),
        reference.store().journal_path().to_path_buf(),
    );
    drop(reference);

    let served_bytes = std::fs::read(&served_data).expect("read served image");
    let reference_bytes = std::fs::read(&ref_data).expect("read reference image");
    assert_eq!(
        served_bytes, reference_bytes,
        "the concurrent run's flushed image differs from the \
         single-threaded rebuild: the pipeline leaked history into layout"
    );

    // And the recovered contents are exactly the oracle.
    let reopened = open(&served_path);
    let recovered: Vec<(u64, u64)> = reopened.iter().map(|(k, v)| (*k, *v)).collect();
    let want: Vec<(u64, u64)> = expected.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(recovered, want);
    drop(reopened);

    drop_paths(&served_data, &served_journal);
    drop_paths(&ref_data, &ref_journal);
}

#[test]
fn kill_mid_flush_over_the_network_recovers_whole_old_or_whole_new() {
    let mut rollbacks = 0usize;
    let mut replays = 0usize;

    // Sweep fuse budgets; each trial is a fresh store, server, and client.
    for fuse in 1..=24u64 {
        let path = temp_path(&format!("server-crash-{fuse}"));
        let mut dict = open(&path);

        // Base image, flushed cleanly before the server starts.
        let mut base = BTreeMap::new();
        for k in 0..200u64 {
            dict.insert(k * 3, k);
            base.insert(k * 3, k);
        }
        dict.flush().expect("base flush");

        // Arm the fuse, then hand the dictionary to the server.
        dict.store_mut().set_fuse(WriteFuse::after(fuse));
        let (data, journal) = (
            dict.store().path().to_path_buf(),
            dict.store().journal_path().to_path_buf(),
        );
        let mut server = Server::spawn(
            "127.0.0.1:0",
            ServerOptions {
                config: config(),
                persist: Some(dict),
            },
        )
        .expect("bind loopback");

        // The server starts empty (persist is a flush target, not a boot
        // image), so the delta the client writes *is* the new contents.
        let mut delta = BTreeMap::new();
        let mut c = Client::connect(server.addr()).expect("connect");
        for k in 0..150u64 {
            c.put(k * 5, k + 1_000).expect("put");
            delta.insert(k * 5, k + 1_000);
        }

        let crashed = match c.request(&Request::Flush).expect("flush request") {
            Response::Generation(_) => false, // fuse budget outlasted the flush
            Response::Unavailable(msg) => {
                assert!(
                    msg.contains("poison") || msg.contains("crash") || !msg.is_empty(),
                    "{msg}"
                );
                true
            }
            other => panic!("fuse {fuse}: flush answered {other:?}"),
        };
        if crashed {
            // A tripped fuse poisons the store: retrying must refuse typed,
            // not touch the file again.
            assert!(matches!(
                c.request(&Request::Flush).expect("retry"),
                Response::Unavailable(_)
            ));
        }
        server.shutdown();
        drop(server); // the simulated process death drops the store handle

        // Whole-old or whole-new, never a torn mixture.
        let reopened = open(&path);
        assert_eq!(reopened.seed(), SEED, "fuse {fuse}");
        let recovered: BTreeMap<u64, u64> = reopened.iter().map(|(k, v)| (*k, *v)).collect();
        if crashed {
            if recovered == base {
                rollbacks += 1;
            } else if recovered == delta {
                replays += 1;
            } else {
                panic!(
                    "fuse {fuse}: recovered a torn image ({} records; \
                     expected whole-old {} or whole-new {})",
                    recovered.len(),
                    base.len(),
                    delta.len()
                );
            }
        } else {
            assert_eq!(recovered, delta, "fuse {fuse}: completed flush lost data");
        }
        drop(reopened);
        drop_paths(&data, &journal);
    }

    assert!(rollbacks > 0, "no fuse budget exercised rollback");
    assert!(
        rollbacks + replays > 0,
        "no fuse budget tripped mid-flush at all"
    );
}
