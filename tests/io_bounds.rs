//! Integration tests of the I/O bounds (the theorems' *shape*, at test-sized
//! inputs): these are fast sanity checks; the full sweeps live in the
//! benchmark harnesses (`crates/bench/src/bin`).

use anti_persistence::prelude::*;

#[test]
fn pma_range_query_is_scan_optimal() {
    // Theorem 1: Query(i, j) for k elements costs O(1 + k/B) I/Os given the
    // starting rank. Doubling k should roughly double the I/O count once k/B
    // dominates.
    let tracer = Tracer::enabled(IoConfig::new(4096, 1 << 15));
    let mut pma: HiPma<u64> = HiPma::with_parts(
        RngSource::from_seed(1),
        SharedCounters::new(),
        tracer.clone(),
        16,
    );
    for k in 0..40_000u64 {
        pma.insert(k as usize, k).unwrap();
    }
    let cost_of = |k: usize| {
        tracer.reset_cold();
        pma.range_query(10_000, 10_000 + k - 1).unwrap();
        tracer.stats().reads
    };
    let small = cost_of(1_000).max(1);
    let large = cost_of(16_000);
    let ratio = large as f64 / small as f64;
    assert!(
        ratio > 8.0 && ratio < 32.0,
        "16x larger range should cost ~16x more I/Os, got ratio {ratio} ({small} -> {large})"
    );
}

#[test]
fn skiplist_search_cost_grows_sublinearly() {
    // Theorem 3: searches cost O(log_B N) I/Os whp — quadrupling N must not
    // come close to quadrupling the per-search I/O count.
    let block = 64usize;
    let mut avg_cost = Vec::new();
    for &n in &[4_000u64, 16_000] {
        let mut list: ExternalSkipList<u64, u64> =
            ExternalSkipList::history_independent(block, 0.5, 7);
        for k in 0..n {
            list.insert(k, k);
        }
        let mut total = 0u64;
        let probes = 200u64;
        for i in 0..probes {
            list.get(&(i * (n / probes)));
            total += list.last_op_ios();
        }
        avg_cost.push(total as f64 / probes as f64);
    }
    assert!(
        avg_cost[1] < avg_cost[0] * 2.0,
        "4x data should not double search I/Os: {avg_cost:?}"
    );
}

#[test]
fn hi_skiplist_beats_folklore_bskiplist_on_search_tail() {
    // Lemma 15's practical consequence: the folklore B-skip list has a heavy
    // search-cost tail, the HI skip list does not.
    let block = 64usize;
    let n = 20_000u64;
    let mut hi: ExternalSkipList<u64, u64> = ExternalSkipList::history_independent(block, 0.5, 3);
    let mut folk: ExternalSkipList<u64, u64> = ExternalSkipList::folklore_b(block, 4);
    for k in 0..n {
        hi.insert(k, k);
        folk.insert(k, k);
    }
    let tail_cost = |list: &ExternalSkipList<u64, u64>| {
        let mut worst = 0u64;
        for k in (0..n).step_by(23) {
            list.get(&k);
            worst = worst.max(list.last_op_ios());
        }
        worst
    };
    let hi_worst = tail_cost(&hi);
    let folk_worst = tail_cost(&folk);
    assert!(
        hi_worst <= folk_worst,
        "HI worst-case search ({hi_worst}) should not exceed the folklore B-skip list's ({folk_worst})"
    );
}

#[test]
fn btree_and_cob_btree_search_io_are_comparable() {
    // Theorem 2: the HI cache-oblivious B-tree matches a B-tree's I/O
    // complexity up to constants when B = Ω(log N log log N).
    let n = 50_000u64;
    let block_bytes = 4096usize;
    // B-tree with ~256 records per node ≈ 4 KiB nodes.
    let mut bt: BTree<u64, u64> = BTree::new(256);
    for k in 0..n {
        bt.insert(k, k);
    }
    let tracer = Tracer::enabled(IoConfig::new(block_bytes, 1 << 14));
    let mut cob: CobBTree<u64, u64> = CobBTree::with_parts(
        RngSource::from_seed(5),
        SharedCounters::new(),
        tracer.clone(),
        16,
    );
    for k in 0..n {
        cob.insert(k, k);
    }
    // Average search I/Os.
    let probes: Vec<u64> = (0..n).step_by(991).collect();
    let mut bt_total = 0u64;
    for p in &probes {
        bt.get(p);
        bt_total += bt.last_op_ios();
    }
    tracer.reset_cold();
    for p in &probes {
        cob.get(p);
    }
    let cob_avg = tracer.stats().reads as f64 / probes.len() as f64;
    let bt_avg = bt_total as f64 / probes.len() as f64;
    assert!(
        cob_avg <= 12.0 * bt_avg.max(1.0),
        "cache-oblivious searches ({cob_avg}) should be within a constant factor of the B-tree ({bt_avg})"
    );
}

#[test]
fn observation1_whi_capacity_beats_canonical_capacity() {
    // Observation 1: under the alternating adversary a canonical (SHI-style)
    // capacity rule resizes every step, while the WHI rule almost never does.
    use hi_common::capacity::{HiCapacity, ShiCanonicalCapacity};
    let mut rng = RngSource::from_seed(9);
    let r = rng.rng();
    let n = 1 << 12;
    let mut whi = HiCapacity::new();
    for _ in 0..n {
        whi.on_insert(r);
    }
    let mut shi = ShiCanonicalCapacity::with_len(n);
    let mut whi_rebuilds = 0u64;
    let mut shi_rebuilds = 0u64;
    for i in 0..2_000u64 {
        if i % 2 == 0 {
            if whi.on_insert(r).is_rebuild() {
                whi_rebuilds += 1;
            }
            if shi.on_insert().is_rebuild() {
                shi_rebuilds += 1;
            }
        } else {
            if whi.on_delete(r).is_rebuild() {
                whi_rebuilds += 1;
            }
            if shi.on_delete().is_rebuild() {
                shi_rebuilds += 1;
            }
        }
    }
    assert_eq!(shi_rebuilds, 2_000, "the canonical rule must thrash");
    assert!(
        whi_rebuilds < 100,
        "the WHI rule should rebuild O(1/N) of the time, got {whi_rebuilds}"
    );
}
