//! Chaos soak battery: the full storage-fault universe against the
//! journaled block store, end to end through the facade.
//!
//! Where `tests/block_store_crash.rs` sweeps one fault kind (the torn
//! write) over every kill point, this battery crosses **every fault kind**
//! of [`FaultPlan`] with a spread of injection sites and several
//! deterministic op scripts, and checks the *tri-state invariant* at every
//! cell — exactly one of:
//!
//! 1. **correct success**: the operation completes, and the at-rest data
//!    bytes are byte-identical to a fault-free run of the same script
//!    (history independence makes that comparison exact, not just
//!    semantic);
//! 2. **typed error**: the operation fails with a typed
//!    `PersistError`/`FileError` variant — never a panic, never silently
//!    wrong data;
//! 3. **whole-old-or-whole-new recovery**: after a mid-commit failure,
//!    reopening recovers exactly the previous image or exactly the
//!    interrupted one (and its bytes match the corresponding fault-free
//!    image), never a torn mixture.
//!
//! Additionally, read-side faults must never mutate the at-rest bytes, and
//! the exhaustive bit-flip fuzz flips every byte of a committed image (and
//! of a mid-commit data+journal pair) one at a time: `open`+`load` must
//! either reject the flip with a typed error or recover a whole image.
//!
//! Setting `CHAOS_SMOKE=1` shrinks the sweep (fewer scripts and sites, a
//! stride over the fuzz) for CI smoke runs; seeds are fixed either way, so
//! every cell is replayable.

use std::collections::BTreeMap;

use anti_persistence::dict::{Backend, Dict};
use anti_persistence::prelude::*;
use block_store::temp_path;

const BLOCK: usize = 512;

fn smoke() -> bool {
    std::env::var("CHAOS_SMOKE").is_ok()
}

fn scripts() -> u64 {
    if smoke() {
        1
    } else {
        3
    }
}

/// Spreads at most `n` injection sites over `1..=total`, always including
/// both endpoints (the first possible failure and the "fault never fires"
/// boundary).
fn sites(total: u64) -> Vec<u64> {
    let n = if smoke() { 4 } else { 10 };
    if total <= n {
        (1..=total).collect()
    } else {
        (0..n).map(|i| 1 + i * (total - 1) / (n - 1)).collect()
    }
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// Phase 1: a deterministic base load. Mirrored into `oracle`.
fn phase1(dict: &mut PersistentDict, oracle: &mut BTreeMap<u64, u64>, script: u64) {
    let mut state = script.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    for i in 0..200u64 {
        let k = lcg(&mut state) % 10_000;
        dict.insert(k, i);
        oracle.insert(k, i);
    }
}

/// Phase 2: a mixed insert/remove workload that changes the key set (so
/// the two committed images genuinely differ). Mirrored into `oracle`.
fn phase2(dict: &mut PersistentDict, oracle: &mut BTreeMap<u64, u64>, script: u64) {
    let mut state = script.wrapping_mul(0xD1B54A32D192ED03) | 1;
    for i in 0..150u64 {
        let k = lcg(&mut state) % 10_000;
        if i % 3 == 0 {
            dict.remove(&k);
            oracle.remove(&k);
        } else {
            dict.insert(k, i + 1_000_000);
            oracle.insert(k, i + 1_000_000);
        }
    }
}

fn contents_of(dict: &PersistentDict) -> Vec<(u64, u64)> {
    dict.iter().map(|(k, v)| (*k, *v)).collect()
}

fn oracle_vec(oracle: &BTreeMap<u64, u64>) -> Vec<(u64, u64)> {
    oracle.iter().map(|(&k, &v)| (k, v)).collect()
}

fn open(path: &std::path::Path, seed: u64) -> PersistentDict {
    Dict::builder()
        .backend(Backend::HiPma)
        .seed(seed)
        .build_persistent_with(path, StoreOptions::new(BLOCK).no_sync())
        .unwrap()
}

fn drop_paths(data: &std::path::Path, journal: &std::path::Path) {
    let _ = std::fs::remove_file(data);
    let _ = std::fs::remove_file(journal);
}

/// The write-side soak: every write-fault kind × a spread of write indices
/// × every script, with the tri-state invariant checked at each cell.
#[test]
fn every_write_fault_cell_lands_in_the_tri_state() {
    const SEED: u64 = 0x50AC;
    const KINDS: usize = 5;

    let mut successes = 0u64;
    let mut typed_failures = 0u64;
    let mut rollbacks = 0u64;
    let mut replays = 0u64;

    for script in 0..scripts() {
        // Fault-free reference run: the oracle contents and the exact
        // at-rest bytes after each of the two flushes. History independence
        // makes these bytes reproducible in every trial below.
        let path = temp_path(&format!("chaos-ref-{script}"));
        let mut oracle = BTreeMap::new();
        let mut dict = open(&path, SEED);
        phase1(&mut dict, &mut oracle, script);
        dict.flush().unwrap();
        let oracle1 = oracle_vec(&oracle);
        let (ref1, _) = dict.store().raw_bytes().unwrap();
        let before = dict.store().stats().blocks_written();
        phase2(&mut dict, &mut oracle, script);
        dict.flush().unwrap();
        let writes = dict.store().stats().blocks_written() - before;
        let oracle2 = oracle_vec(&oracle);
        let (ref2, _) = dict.store().raw_bytes().unwrap();
        assert_ne!(oracle1, oracle2, "script {script}: phases must differ");
        let (d, j) = (
            dict.store().path().to_path_buf(),
            dict.store().journal_path().to_path_buf(),
        );
        drop(dict);
        drop_paths(&d, &j);

        for kind in 0..KINDS {
            for &at in &sites(writes) {
                let fault = match kind {
                    0 => Fault::TornWrite { at },
                    1 => Fault::ShortWrite { at },
                    2 => Fault::WriteTransient {
                        at,
                        times: IO_RETRY_ATTEMPTS - 1,
                    },
                    3 => Fault::WriteTransient {
                        at,
                        times: IO_RETRY_ATTEMPTS,
                    },
                    _ => Fault::NoSpace { at },
                };
                let tag = format!("script {script}, kind {kind}, site {at}");
                let path = temp_path(&format!("chaos-w-{script}-{kind}-{at}"));
                let mut oracle = BTreeMap::new();
                let mut dict = open(&path, SEED);
                phase1(&mut dict, &mut oracle, script);
                dict.flush().unwrap();
                phase2(&mut dict, &mut oracle, script);
                dict.store_mut().set_fault_plan(FaultPlan::new([fault]));
                let (d, j) = (
                    dict.store().path().to_path_buf(),
                    dict.store().journal_path().to_path_buf(),
                );
                match dict.flush() {
                    Ok(_) => {
                        // Arm 1: correct success — bytes identical to the
                        // fault-free run, nothing poisoned.
                        successes += 1;
                        assert!(
                            !dict.store().is_poisoned(),
                            "{tag}: success must not poison"
                        );
                        assert_eq!(contents_of(&dict), oracle2, "{tag}");
                        let (data, _) = dict.store().raw_bytes().unwrap();
                        assert_eq!(
                            data, ref2,
                            "{tag}: a faulted-but-successful flush must be \
                             byte-identical to the fault-free image"
                        );
                        // A within-budget transient is *required* to succeed.
                        if kind == 2 {
                            assert!(at <= writes, "{tag}");
                        }
                    }
                    Err(err) => {
                        // Arm 2: typed error. The retry budget and the
                        // disk-full condition carry their own variants.
                        typed_failures += 1;
                        match (kind, &err) {
                            (3, PersistError::Transient { attempts }) => {
                                assert_eq!(*attempts, IO_RETRY_ATTEMPTS, "{tag}")
                            }
                            (3, other) => panic!("{tag}: expected Transient, got {other:?}"),
                            (4, PersistError::NoSpace) => {}
                            (4, other) => panic!("{tag}: expected NoSpace, got {other:?}"),
                            _ => {}
                        }
                        assert!(
                            dict.store().is_poisoned(),
                            "{tag}: a failed commit must poison the handle"
                        );
                        assert!(
                            dict.flush().is_err(),
                            "{tag}: a poisoned store must refuse further commits"
                        );
                        drop(dict);

                        // Arm 3: whole-old-or-whole-new recovery, with the
                        // recovered bytes matching the corresponding
                        // fault-free image exactly.
                        let reopened = open(&path, SEED);
                        let recovered = contents_of(&reopened);
                        let (data, _) = reopened.store().raw_bytes().unwrap();
                        if recovered == oracle1 {
                            rollbacks += 1;
                            assert_eq!(data, ref1, "{tag}: rollback bytes");
                        } else if recovered == oracle2 {
                            replays += 1;
                            assert_eq!(data, ref2, "{tag}: replay bytes");
                        } else {
                            panic!(
                                "{tag}: recovered a torn image ({} records; \
                                 expected {} or {})",
                                recovered.len(),
                                oracle1.len(),
                                oracle2.len()
                            );
                        }
                        drop_paths(&d, &j);
                        continue;
                    }
                }
                drop(dict);
                drop_paths(&d, &j);
            }
        }
    }

    assert!(successes > 0, "no cell exercised the success arm");
    assert!(typed_failures > 0, "no cell exercised the typed-error arm");
    assert!(rollbacks > 0, "no cell exercised rollback recovery");
    if !smoke() {
        assert!(replays > 0, "no cell exercised journal-replay recovery");
    }
}

/// The read-side soak: every read-fault kind × a spread of read indices
/// (or block ids) × every script. Reads either succeed with exactly the
/// committed contents or fail typed — and never mutate the at-rest bytes.
#[test]
fn every_read_fault_cell_is_typed_and_leaves_the_image_intact() {
    const SEED: u64 = 0x5EED;
    const KINDS: usize = 5;

    let mut successes = 0u64;
    let mut typed_failures = 0u64;

    for script in 0..scripts() {
        let path = temp_path(&format!("chaos-r-{script}"));
        let mut oracle = BTreeMap::new();
        let mut dict = open(&path, SEED);
        phase1(&mut dict, &mut oracle, script);
        phase2(&mut dict, &mut oracle, script);
        dict.flush().unwrap();
        let committed = oracle_vec(&oracle);
        let (d, j) = (
            dict.store().path().to_path_buf(),
            dict.store().journal_path().to_path_buf(),
        );
        drop(dict);

        // Count the load's logical reads with an armed-but-empty plan, so
        // the site spread covers the whole read stream.
        let mut store = BlockStore::open(&path, StoreOptions::new(BLOCK).no_sync()).unwrap();
        let probe = FaultPlan::new([]);
        store.set_fault_plan(probe.clone());
        let (_, _, records) = store.load::<(u64, u64)>().unwrap();
        assert_eq!(records, committed, "script {script}: probe load");
        let reads = probe.reads_begun();
        assert!(reads > 0, "script {script}: load must read");
        drop(store);
        let ref_bytes = std::fs::read(&path).unwrap();
        let data_blocks = ref_bytes.len() as u64 / BLOCK as u64;

        for kind in 0..KINDS {
            // Kind 3 targets absolute block ids; the others logical read
            // indices (0-based, hence `site - 1`).
            let span = if kind == 3 { data_blocks } else { reads };
            for &site in &sites(span) {
                let at = site - 1;
                let fault = match kind {
                    0 => Fault::ReadTransient {
                        at,
                        times: IO_RETRY_ATTEMPTS - 1,
                    },
                    1 => Fault::ReadTransient {
                        at,
                        times: IO_RETRY_ATTEMPTS,
                    },
                    2 => Fault::ShortRead { at },
                    3 => Fault::ReadError { block: at },
                    _ => Fault::BitRot {
                        seed: script * 1_000 + at,
                        one_in: 1,
                    },
                };
                let tag = format!("script {script}, kind {kind}, site {at}");
                let mut store =
                    BlockStore::open(&path, StoreOptions::new(BLOCK).no_sync()).unwrap();
                store.set_fault_plan(FaultPlan::new([fault]));
                match store.load::<(u64, u64)>() {
                    Ok((_, _, recs)) => {
                        successes += 1;
                        assert_eq!(recs, committed, "{tag}: a successful load must be exact");
                        // A within-budget transient is required to succeed.
                        if kind == 1 || kind == 2 || kind == 3 {
                            panic!("{tag}: this fault kind cannot succeed");
                        }
                    }
                    Err(err) => {
                        typed_failures += 1;
                        match (kind, &err) {
                            (0, other) => panic!(
                                "{tag}: a within-budget transient must be retried \
                                 to success, got {other:?}"
                            ),
                            (1, FileError::Transient { attempts }) => {
                                assert_eq!(*attempts, IO_RETRY_ATTEMPTS, "{tag}")
                            }
                            (1, other) => panic!("{tag}: expected Transient, got {other:?}"),
                            (2, FileError::ShortRead { .. }) => {}
                            (2, other) => panic!("{tag}: expected ShortRead, got {other:?}"),
                            (4, FileError::Corrupt { .. }) => {}
                            (4, other) => panic!(
                                "{tag}: bit rot must surface as a checksum failure, \
                                 got {other:?}"
                            ),
                            _ => {}
                        }
                    }
                }
                drop(store);
                // Read-side faults must never mutate the at-rest bytes.
                assert_eq!(
                    std::fs::read(&path).unwrap(),
                    ref_bytes,
                    "{tag}: a read fault mutated the file"
                );
            }
        }

        // Bit rot on the scrub path: the sweep sees the rotted blocks;
        // disarming shows the rot was read-side only.
        let mut store = BlockStore::open(&path, StoreOptions::new(BLOCK).no_sync()).unwrap();
        store.set_fault_plan(FaultPlan::new([Fault::BitRot {
            seed: script,
            one_in: 1,
        }]));
        let report = store.scrub().unwrap();
        assert!(
            !report.is_clean(),
            "script {script}: scrub under universal bit rot must report corruption"
        );
        store.set_fault_plan(FaultPlan::none());
        store.verify_all().expect("the platter itself is clean");
        drop(store);
        drop_paths(&d, &j);
    }

    assert!(successes > 0, "no cell exercised the success arm");
    assert!(typed_failures > 0, "no cell exercised the typed-error arm");
}

/// Exhaustive single-byte fuzz over a committed image: every flipped byte
/// must be rejected typed. The integrity chain (header self-checksum →
/// checksum-region root → per-block words, plus the structural padding and
/// vacant-slot checks) covers every byte of the file, so no flip may load.
#[test]
fn flipping_any_byte_of_a_committed_image_is_rejected_typed() {
    const SEED: u64 = 0xB17;
    let path = temp_path("chaos-flip");
    let mut dict = open(&path, SEED);
    for k in 0..40u64 {
        dict.insert(k * 7, k);
    }
    dict.flush().unwrap();
    let committed = contents_of(&dict);
    let (d, j) = (
        dict.store().path().to_path_buf(),
        dict.store().journal_path().to_path_buf(),
    );
    drop(dict);
    let ref_bytes = std::fs::read(&path).unwrap();

    let step = if smoke() { 13 } else { 1 };
    let mut rejected = 0u64;
    for i in (0..ref_bytes.len()).step_by(step) {
        let mut mutated = ref_bytes.clone();
        mutated[i] ^= 0xFF;
        std::fs::write(&path, &mutated).unwrap();
        let _ = std::fs::remove_file(&j);
        let outcome = BlockStore::open(&path, StoreOptions::new(BLOCK).no_sync())
            .and_then(|mut s| s.load::<(u64, u64)>());
        match outcome {
            Ok((_, _, recs)) => {
                panic!(
                    "byte {i}/{}: a flipped image loaded ({} records, committed {}) — \
                     this byte is not covered by the integrity chain",
                    ref_bytes.len(),
                    recs.len(),
                    committed.len()
                );
            }
            Err(_) => rejected += 1, // typed; a panic would abort the test
        }
    }
    assert!(rejected > 0);
    drop_paths(&d, &j);
}

/// Exhaustive single-byte fuzz over a *mid-commit* state (data + journal
/// from a crashed flush, at an early and a late kill point): every flip
/// must either recover a whole image — exactly the old or exactly the new
/// contents — or fail typed. Never a panic, never a torn mixture.
#[test]
fn flipping_any_byte_of_a_mid_commit_state_recovers_whole_or_rejects_typed() {
    const SEED: u64 = 0xF1A;
    // Learn the crashed flush's write count once.
    let path = temp_path("chaos-mid-dry");
    let mut oracle = BTreeMap::new();
    let mut dict = open(&path, SEED);
    phase1(&mut dict, &mut oracle, 0);
    dict.flush().unwrap();
    let oracle1 = oracle_vec(&oracle);
    let before = dict.store().stats().blocks_written();
    phase2(&mut dict, &mut oracle, 0);
    dict.flush().unwrap();
    let writes = dict.store().stats().blocks_written() - before;
    let oracle2 = oracle_vec(&oracle);
    let (d, j) = (
        dict.store().path().to_path_buf(),
        dict.store().journal_path().to_path_buf(),
    );
    drop(dict);
    drop_paths(&d, &j);

    // An early kill (mid-journal, pre-commit-point) and a late one
    // (mid-data, post-commit-point).
    let kill_points = [2, writes - 1];
    let step = if smoke() { 13 } else { 1 };
    let mut recovered_old = 0u64;
    let mut recovered_new = 0u64;
    let mut rejected = 0u64;

    for (which, &kill) in kill_points.iter().enumerate() {
        let path = temp_path(&format!("chaos-mid-{which}"));
        let mut oracle = BTreeMap::new();
        let mut dict = open(&path, SEED);
        phase1(&mut dict, &mut oracle, 0);
        dict.flush().unwrap();
        phase2(&mut dict, &mut oracle, 0);
        dict.store_mut()
            .set_fault_plan(FaultPlan::new([Fault::TornWrite { at: kill }]));
        dict.flush().unwrap_err();
        let (d, j) = (
            dict.store().path().to_path_buf(),
            dict.store().journal_path().to_path_buf(),
        );
        drop(dict);
        let data_ref = std::fs::read(&d).unwrap();
        let journal_ref = std::fs::read(&j).unwrap_or_default();

        // Flip sites: every byte of the data file, then every byte of the
        // journal (offset past the data length in the combined index).
        let total = data_ref.len() + journal_ref.len();
        for i in (0..total).step_by(step) {
            let mut data = data_ref.clone();
            let mut journal = journal_ref.clone();
            if i < data.len() {
                data[i] ^= 0xFF;
            } else {
                journal[i - data.len()] ^= 0xFF;
            }
            std::fs::write(&d, &data).unwrap();
            std::fs::write(&j, &journal).unwrap();
            let outcome = BlockStore::open(&path, StoreOptions::new(BLOCK).no_sync())
                .and_then(|mut s| s.load::<(u64, u64)>());
            match outcome {
                Ok((_, _, recs)) => {
                    if recs == oracle1 {
                        recovered_old += 1;
                    } else if recs == oracle2 {
                        recovered_new += 1;
                    } else {
                        panic!(
                            "kill {kill}, flip {i}: recovered a torn image \
                             ({} records; expected {} or {})",
                            recs.len(),
                            oracle1.len(),
                            oracle2.len()
                        );
                    }
                }
                Err(_) => rejected += 1, // typed; never a panic
            }
        }
        drop_paths(&d, &j);
    }

    assert!(
        recovered_old > 0,
        "no flip recovered the previous image (rollback)"
    );
    assert!(rejected > 0, "no flip was rejected typed");
    // The late kill point leaves a complete journal; most of its data-file
    // flips are repaired by replay.
    assert!(
        recovered_new > 0,
        "no flip recovered the interrupted image (replay)"
    );
}
