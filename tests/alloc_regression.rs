//! Allocator-level regression tests for the allocation-free rebalance
//! engine.
//!
//! A counting global allocator (the same technique as the
//! `bulk_vs_incremental` bench) and a clone-counting element type pin the
//! engine's core guarantees:
//!
//! * a steady-state HI-PMA insert — no capacity resize — performs **zero
//!   heap allocations**, whether it is a leaf-only update or a range
//!   rebalance (the scratch arena and the fixed-capacity leaf vectors
//!   absorb both);
//! * a leaf-only insert additionally performs **zero `Clone` calls**; a
//!   range rebalance clones only the balance pivots the augmented value
//!   tree stores by design (bounded by the rebuilt subtree's node count);
//! * the external skip list's insert path stays within a small allocation
//!   budget per operation (the pre-engine code cloned the key and
//!   reallocated leaf arrays on every insert).
//!
//! The tests share one global allocation counter, so they serialize on a
//! mutex instead of running concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use anti_persistence::dict::{Backend, Dict, DynDict};
use anti_persistence::prelude::{Dictionary, ShardedDict};
use block_store::{temp_path, BlockStore, StoreOptions};
use pma::persist::flush_layout;
use pma::HiPma;
use skiplist::ExternalSkipList;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to `System`; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// An element whose clones are counted, so "zero `Clone` calls" is asserted
/// at the type level rather than inferred from allocator silence.
#[derive(Debug, PartialEq, Eq)]
struct CountedClone(u64);

static CLONES: AtomicU64 = AtomicU64::new(0);

impl Clone for CountedClone {
    fn clone(&self) -> Self {
        CLONES.fetch_add(1, Ordering::Relaxed);
        CountedClone(self.0)
    }
}

fn clones() -> u64 {
    CLONES.load(Ordering::Relaxed)
}

/// Deterministic rank sequence (LCG high bits).
fn next_rank(state: &mut u64, modulus: u64) -> usize {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 11) % modulus) as usize
}

#[test]
fn steady_state_hi_pma_inserts_are_allocation_free() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let n_warm = 40_000usize;
    let mut pma: HiPma<CountedClone> = HiPma::new(0xA110C);
    let mut state = 99u64;
    for i in 0..n_warm {
        let rank = next_rank(&mut state, pma.len() as u64 + 1);
        pma.insert(rank, CountedClone(i as u64)).unwrap();
    }
    // Shrink below the warm-up high-water mark so the scratch arena and the
    // leaf capacities are provably sufficient for the measured phase.
    for _ in 0..4_000 {
        let rank = next_rank(&mut state, pma.len() as u64);
        pma.delete(rank).unwrap();
    }

    let measured = 3_000usize;
    let mut leaf_only = 0usize;
    let mut rebalances = 0usize;
    let mut resizes = 0usize;
    for i in 0..measured {
        let rank = next_rank(&mut state, pma.len() as u64 + 1);
        let before = pma.counters().snapshot();
        let allocs_before = allocations();
        let clones_before = clones();
        pma.insert(rank, CountedClone(i as u64)).unwrap();
        let alloc_delta = allocations() - allocs_before;
        let clone_delta = clones() - clones_before;
        let delta = pma.counters().snapshot().since(&before);
        if delta.resizes > 0 {
            // Capacity parameter changed: geometry, trees and leaf vectors
            // are legitimately reallocated. O(1/n) of updates.
            resizes += 1;
            continue;
        }
        assert_eq!(
            alloc_delta, 0,
            "insert {i}: steady-state insert allocated ({} rebuild slots)",
            delta.rebuild_slots
        );
        if delta.rebuilds == 0 {
            assert_eq!(clone_delta, 0, "insert {i}: leaf-only insert cloned");
            leaf_only += 1;
        } else {
            // A range rebuild clones exactly the balance pivots the
            // augmented value tree stores: at most one per node of the
            // rebuilt subtree (~2 nodes per rebuilt leaf).
            let leaves_rebuilt = delta.rebuild_slots / pma.geometry().leaf_slots as u64;
            assert!(
                clone_delta <= 2 * leaves_rebuilt + 2,
                "insert {i}: {clone_delta} clones exceed the value-tree pivot bound \
                 for {leaves_rebuilt} rebuilt leaves"
            );
            rebalances += 1;
        }
    }
    // The workload must actually have exercised both steady-state paths.
    assert!(
        leaf_only > 100,
        "only {leaf_only} leaf-only inserts measured"
    );
    assert!(rebalances > 100, "only {rebalances} rebalances measured");
    assert!(
        resizes < measured / 10,
        "{resizes} resizes is not steady state"
    );
}

#[test]
fn steady_state_hi_pma_deletes_are_allocation_free() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut pma: HiPma<u64> = HiPma::new(0xDE1);
    let mut state = 7u64;
    for i in 0..30_000u64 {
        let rank = next_rank(&mut state, pma.len() as u64 + 1);
        pma.insert(rank, i).unwrap();
    }
    let mut clean = 0usize;
    for i in 0..2_000 {
        let rank = next_rank(&mut state, pma.len() as u64);
        let before = pma.counters().snapshot();
        let allocs_before = allocations();
        pma.delete(rank).unwrap();
        let alloc_delta = allocations() - allocs_before;
        if pma.counters().snapshot().since(&before).resizes > 0 {
            continue;
        }
        assert_eq!(alloc_delta, 0, "delete {i}: steady-state delete allocated");
        clean += 1;
    }
    assert!(clean > 1_500, "only {clean} steady-state deletes measured");
}

#[test]
fn sharded_merged_scans_are_allocation_free_after_setup() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The k-way merge buffers shard iterators in inline arrays and the
    // cache-oblivious B-tree's lazy iterators are allocation-free, so a
    // merged global scan over a sharded service must cost zero heap
    // allocations once the service is built — construction of the merge
    // iterator included.
    let mut service: ShardedDict<DynDict<u64, u64>> = Dict::builder()
        .backend(Backend::CobBTree)
        .seed(0x5CA7)
        .shards(4)
        .build_sharded();
    service.multi_put((0..40_000u64).map(|k| (k * 2, k)));

    let mut sink = 0u64;
    let before = allocations();
    for i in 0..50u64 {
        // Full merged scan plus a merged window scan per round.
        sink ^= service.range_iter(..).map(|(_, v)| *v).sum::<u64>();
        let lo = (i * 317) % 60_000;
        sink ^= service.range_iter(lo..lo + 4_000).count() as u64;
    }
    let delta = allocations() - before;
    black_box(sink);
    assert_eq!(
        delta, 0,
        "merged k-way scans allocated {delta} times across 100 scans"
    );
}

#[test]
fn batched_apply_gathers_once_per_window_not_once_per_element() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // A warmed HI PMA applying a rank batch of `b` operations confined to
    // `w` clusters must perform O(w) scratch-arena gather/refill round
    // trips (one per maximal dirty run — counted by `batch_gathers`) and
    // zero heap allocations: the replay only updates counts and coins, and
    // the commit reuses the persistent run buffer and leaf capacities.
    let mut pma: HiPma<u64> = HiPma::new(0xBA7C);
    let mut state = 5u64;
    for i in 0..60_000u64 {
        let rank = next_rank(&mut state, pma.len() as u64 + 1);
        pma.insert(rank, i).unwrap();
    }
    for _ in 0..6_000 {
        let rank = next_rank(&mut state, pma.len() as u64);
        pma.delete(rank).unwrap();
    }
    let b = 512usize;
    let clusters = 8usize;
    let mut run_batch = |pma: &mut HiPma<u64>| {
        // b/2 insert+delete pairs, clustered into `clusters` narrow rank
        // neighbourhoods, so dirty leaves coalesce into few runs.
        pma.batch_begin();
        for i in 0..b / 2 {
            let len = pma.len() as u64;
            let center = (len / clusters as u64) * ((i % clusters) as u64) + 50;
            let rank = (center + next_rank(&mut state, 40) as u64).min(len);
            pma.batch_insert(rank as usize, i as u64);
            let len = pma.len() as u64;
            let rank = (center + next_rank(&mut state, 40) as u64).min(len - 1);
            pma.batch_delete(rank as usize);
        }
        pma.batch_commit();
    };
    // Warm the batch machinery (first batch sizes the reusable vectors),
    // then measure until a batch completes without a capacity resize.
    for _ in 0..6 {
        run_batch(&mut pma);
    }
    let mut measured = false;
    for attempt in 0..20 {
        let before_counters = pma.counters().snapshot();
        let before_allocs = allocations();
        run_batch(&mut pma);
        let alloc_delta = allocations() - before_allocs;
        let delta = pma.counters().snapshot().since(&before_counters);
        if delta.resizes > 0 {
            continue; // O(1/n) of batches legitimately rebuild everything
        }
        assert_eq!(
            alloc_delta, 0,
            "attempt {attempt}: steady-state batch of {b} ops allocated {alloc_delta} times"
        );
        assert!(
            delta.batch_gathers as usize <= 4 * clusters,
            "attempt {attempt}: {} gather/refill round-trips for {clusters} clusters — \
             commit must touch windows, not elements",
            delta.batch_gathers
        );
        assert!(
            (delta.batch_gathers as usize) < b / 8,
            "attempt {attempt}: gathers scale with the batch, not the windows"
        );
        measured = true;
        break;
    }
    assert!(measured, "no resize-free batch observed in 20 attempts");
    pma.check_invariants();
}

#[test]
fn keyed_batch_driver_allocations_are_per_batch_not_per_element() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The keyed driver (locate + Fenwick replay) allocates a handful of
    // bookkeeping vectors per apply_batch call — independent of the batch
    // length — and the engine underneath allocates nothing once warm.
    let mut dict: DynDict<u64, u64> = Dict::builder().backend(Backend::HiPma).seed(7).build();
    let mut state = 11u64;
    for i in 0..50_000u64 {
        dict.insert(next_rank(&mut state, u64::MAX) as u64, i);
    }
    use hi_common::batch::BatchOp;
    let make_batch = |state: &mut u64, b: usize| -> Vec<BatchOp<u64, u64>> {
        (0..b)
            .map(|i| BatchOp::Put(next_rank(state, u64::MAX) as u64, i as u64))
            .collect()
    };
    // Warm-up batches size every reusable buffer (driver vectors are
    // per-call; engine scratch persists).
    for _ in 0..3 {
        let ops = make_batch(&mut state, 1_024);
        dict.apply_batch(ops);
    }
    let mut per_batch = Vec::new();
    for _ in 0..12 {
        if per_batch.len() >= 4 {
            break;
        }
        let ops = make_batch(&mut state, 1_024);
        let counters_before = dict.counters().snapshot();
        let before = allocations();
        dict.apply_batch(ops);
        let allocated = allocations() - before;
        if dict.counters().snapshot().since(&counters_before).resizes > 0 {
            continue; // a capacity rebuild legitimately reallocates, O(1/n)
        }
        per_batch.push(allocated);
    }
    assert!(per_batch.len() >= 4, "no resize-free batches observed");
    let max = *per_batch.iter().max().unwrap();
    assert!(
        max <= 48,
        "a 1024-op batch performed {max} allocations ({per_batch:?}); \
         the driver's bookkeeping must be per-batch, not per-element"
    );
}

#[test]
fn steady_state_block_store_flushes_are_allocation_free() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The first (full) flush sizes every staging buffer in the store — the
    // page-aligned block scratch, the journal payload, the dirty-id list,
    // the per-block hash tables. Every flush after that must reuse them:
    // zero heap allocations per flushed window, the on-disk counterpart of
    // the PR 3 in-RAM rebalance guarantee.
    let path = temp_path("alloc-flush");
    let mut store = BlockStore::open(&path, StoreOptions::new(4096).no_sync()).unwrap();
    let mut pma: HiPma<u64> = HiPma::new(0xF1A5);
    let mut state = 17u64;
    for i in 0..20_000u64 {
        let rank = next_rank(&mut state, pma.len() as u64 + 1);
        pma.insert(rank, i).unwrap();
    }
    flush_layout(&pma, 9, &mut store).unwrap();

    for round in 0..40u64 {
        // Mutate a window between flushes. Paired delete+insert keeps the
        // length (hence the slot-array geometry) fixed, so no capacity
        // resize muddies the measurement.
        for i in 0..32u64 {
            let rank = next_rank(&mut state, pma.len() as u64);
            pma.delete(rank).unwrap();
            let rank = next_rank(&mut state, pma.len() as u64 + 1);
            pma.insert(rank, round * 1_000 + i).unwrap();
        }
        let before = allocations();
        flush_layout(&pma, 9, &mut store).unwrap();
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "round {round}: steady-state block-store flush allocated {delta} times"
        );
    }
    let data = store.path().to_path_buf();
    let journal = store.journal_path().to_path_buf();
    drop(store);
    let _ = std::fs::remove_file(data);
    let _ = std::fs::remove_file(journal);
}

#[test]
fn skiplist_insert_allocations_are_bounded() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // String keys so every spurious key clone would show up as an
    // allocation (the pre-engine insert cloned the key unconditionally).
    let mut list: ExternalSkipList<String, u64> =
        ExternalSkipList::history_independent(16, 0.5, 0x51AB);
    let key_of = |i: u64| format!("key-{i:012}");
    for i in 0..20_000u64 {
        list.insert(key_of(i * 2), i);
    }
    // Pre-generate the measured keys: key construction is the caller's.
    let fresh: Vec<String> = (0..5_000u64).map(|i| key_of(i * 2 + 1)).collect();
    let before = allocations();
    for (i, key) in fresh.into_iter().enumerate() {
        list.insert(key, i as u64);
    }
    let per_op = (allocations() - before) as f64 / 5_000.0;
    assert!(
        per_op < 1.0,
        "skip list inserts average {per_op:.3} allocations/op; \
         the unpromoted path must move the key without cloning and stay \
         within the drawn pad capacity"
    );
}
