//! Integration tests of the workspace's central claim: weak history
//! independence. Two operation sequences that reach the same logical state
//! must induce the same *distribution* over memory representations.
//!
//! The tests build the same final contents through different histories over
//! many independent seeds and compare layout statistics with a χ² test
//! (the same methodology as the paper's §4.3 experiment). Thresholds are
//! deliberately generous so the tests are stable in CI while still catching
//! real leaks (the classic PMA fails the analogous check deterministically —
//! see the `classic_pma_layout_leaks_history` test in the `pma` crate).

use anti_persistence::prelude::*;
use hi_common::stats::chi2::chi2_gof;

/// Returns the index of the first occupied slot, bucketed into `buckets`
/// equal parts of the array — a coarse layout fingerprint.
fn layout_bucket(occupancy: &[bool], buckets: usize) -> usize {
    let pos = occupancy.iter().position(|&b| b).unwrap_or(0);
    (pos * buckets / occupancy.len()).min(buckets - 1)
}

/// Builds the set {0, …, n−1} in the HI cache-oblivious B-tree via history A
/// (ascending inserts) and history B (descending inserts, plus an
/// insert-then-delete episode for keys n..n+extra), and χ²-compares the
/// layout-fingerprint distributions.
fn compare_histories(n: u64, extra: u64, trials: u64, buckets: usize) -> (Vec<u64>, Vec<u64>) {
    let mut hist_a = vec![0u64; buckets];
    let mut hist_b = vec![0u64; buckets];
    for t in 0..trials {
        let mut a: CobBTree<u64, u64> = CobBTree::new(1_000_000 + t);
        for k in 0..n {
            a.insert(k, k);
        }
        let mut b: CobBTree<u64, u64> = CobBTree::new(2_000_000 + t);
        for k in (0..n).rev() {
            b.insert(k, k);
        }
        for k in n..n + extra {
            b.insert(k, k);
        }
        for k in n..n + extra {
            b.remove(&k);
        }
        assert_eq!(a.to_sorted_vec(), b.to_sorted_vec());
        hist_a[layout_bucket(&a.occupancy(), buckets)] += 1;
        hist_b[layout_bucket(&b.occupancy(), buckets)] += 1;
    }
    (hist_a, hist_b)
}

#[test]
fn cob_btree_layout_distribution_is_history_free() {
    let (hist_a, hist_b) = compare_histories(300, 60, 400, 6);
    // Treat history A's histogram (scaled) as the expected distribution for
    // history B. Merge tiny buckets to keep the test valid.
    let mut observed = Vec::new();
    let mut expected = Vec::new();
    for (a, b) in hist_a.iter().zip(&hist_b) {
        if *a >= 20 {
            expected.push(*a as f64);
            observed.push(*b);
        }
    }
    if observed.len() >= 2 {
        let outcome = chi2_gof(&observed, &expected);
        assert!(
            outcome.p_value > 1e-4,
            "layout distributions differ: A = {hist_a:?}, B = {hist_b:?}, p = {}",
            outcome.p_value
        );
    } else {
        // Everything landed in one bucket for both histories — identical
        // distributions trivially.
        assert_eq!(hist_a, hist_b);
    }
}

#[test]
fn secure_delete_leaves_no_trace_in_capacity() {
    // After inserting and deleting a batch, N̂ must be distributed exactly as
    // if the batch never existed: uniform over {N, …, 2N−1}.
    let n = 64usize;
    let trials = 4_000u64;
    let mut with_episode = vec![0u64; n];
    let mut without = vec![0u64; n];
    for t in 0..trials {
        let mut clean: CobBTree<u64, u64> = CobBTree::new(3_000_000 + t);
        for k in 0..n as u64 {
            clean.insert(k, k);
        }
        without[clean.pma().n_hat() - n] += 1;

        let mut episodic: CobBTree<u64, u64> = CobBTree::new(4_000_000 + t);
        for k in 0..(n as u64 + 40) {
            episodic.insert(k, k);
        }
        for k in n as u64..(n as u64 + 40) {
            episodic.remove(&k);
        }
        with_episode[episodic.pma().n_hat() - n] += 1;
    }
    // Both histories must produce N̂ uniform over {N, …, 2N−1}; test each
    // against the exact uniform distribution (comparing against the other
    // empirical sample would double-count sampling noise).
    let clean_outcome = hi_common::stats::chi2::chi2_gof_uniform(&without);
    let episodic_outcome = hi_common::stats::chi2::chi2_gof_uniform(&with_episode);
    assert!(
        clean_outcome.p_value > 1e-4,
        "clean-history capacity not uniform: p = {}",
        clean_outcome.p_value
    );
    assert!(
        episodic_outcome.p_value > 1e-4,
        "capacity distribution leaks the episode: p = {}",
        episodic_outcome.p_value
    );
}

#[test]
fn skip_list_heights_do_not_leak_history() {
    // The HI skip list's height depends only on the key set's coin flips;
    // compare the height distribution across two histories.
    let n = 400u64;
    let trials = 300u64;
    let mut heights_a = std::collections::HashMap::new();
    let mut heights_b = std::collections::HashMap::new();
    for t in 0..trials {
        let mut a: ExternalSkipList<u64, u64> =
            ExternalSkipList::history_independent(16, 0.5, 5_000_000 + t);
        for k in 0..n {
            a.insert(k, k);
        }
        let mut b: ExternalSkipList<u64, u64> =
            ExternalSkipList::history_independent(16, 0.5, 6_000_000 + t);
        for k in (0..n).rev() {
            b.insert(k, k);
        }
        for k in n..n + 100 {
            b.insert(k, k);
            b.remove(&k);
        }
        *heights_a.entry(a.height()).or_insert(0u64) += 1;
        *heights_b.entry(b.height()).or_insert(0u64) += 1;
    }
    // The two height distributions must essentially coincide. Comparing
    // modes is brittle when two heights are (near-)equally likely, so use
    // the total-variation distance between the empirical distributions.
    let all_heights: std::collections::BTreeSet<usize> =
        heights_a.keys().chain(heights_b.keys()).copied().collect();
    let tv: f64 = all_heights
        .iter()
        .map(|h| {
            let a = *heights_a.get(h).unwrap_or(&0) as f64 / trials as f64;
            let b = *heights_b.get(h).unwrap_or(&0) as f64 / trials as f64;
            (a - b).abs()
        })
        .sum::<f64>()
        / 2.0;
    assert!(
        tv < 0.2,
        "height distributions differ: TV = {tv}, {heights_a:?} vs {heights_b:?}"
    );
}

#[test]
fn balance_elements_stay_uniform_after_a_long_history() {
    // Invariant 6 end-to-end: after a long mixed history, the balance
    // elements recorded across seeds are uniform over their candidate sets.
    //
    // Windows of different sizes are folded into a fixed number of buckets;
    // because a window of size w does not split evenly into `buckets` parts,
    // the correct expected count per bucket is accumulated per record (the
    // fraction of the w offsets that map into that bucket), not assumed
    // uniform.
    let trials = 600u64;
    let n = 600usize;
    let buckets = 8usize;
    let mut observed = vec![0u64; buckets];
    let mut expected = vec![0f64; buckets];
    for t in 0..trials {
        let mut pma: HiPma<u64> = HiPma::new(7_000_000 + t);
        for k in 0..n {
            pma.insert(k, k as u64).unwrap();
        }
        for k in (0..n / 2).rev() {
            pma.delete(k).unwrap();
        }
        for r in pma.balance_records() {
            if r.window >= 8 {
                observed[r.offset * buckets / r.window] += 1;
                for offset in 0..r.window {
                    expected[offset * buckets / r.window] += 1.0 / r.window as f64;
                }
            }
        }
    }
    let total: u64 = observed.iter().sum();
    assert!(total > 500, "not enough samples: {observed:?}");
    let outcome = chi2_gof(&observed, &expected);
    assert!(
        outcome.p_value > 1e-4,
        "balance offsets deviate from uniform: {observed:?} vs expected {expected:?}, p = {}",
        outcome.p_value
    );
}
