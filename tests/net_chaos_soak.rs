//! Network chaos soak: every deterministic wire-fault kind, injected on
//! both relay directions through a [`ChaosProxy`], against a retrying
//! exactly-once client.
//!
//! Each cell spawns a fresh persistent server, runs a two-pass mutation
//! script through the proxy with a HELLO-bound retrying client, then
//! checks the **exactly-once oracle** over a clean direct connection:
//!
//! 1. every *acked* write is present exactly once — its effect is the
//!    final state of its key, never resurrected by a late duplicate and
//!    never double-applied;
//! 2. every *failed* write (retry budget exhausted) is whole-or-absent —
//!    the key holds exactly the before-state or exactly the after-state,
//!    never a mixture, and later acked ops override either;
//! 3. the post-chaos `FLUSH` image is **byte-identical** to a fault-free
//!    single-threaded rebuild of the read-back contents — chaos must not
//!    leak arrival history into the at-rest layout.
//!
//! Satellite batteries pin the sharper edges: FLUSH-generation replay
//! (same token, same generation), PUT non-resurrection across a DEL,
//! pipelined arrival-order under frame duplication, the idle-connection
//! reaper (and PING as its keepalive), and pipelined bursts through a
//! tiny in-flight bound.
//!
//! Setting `CHAOS_SMOKE=1` shrinks the sweep for CI; every fault index
//! and seed is fixed either way, so each cell replays bit-identically.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use anti_persistence::dict::{Backend, Dict, DictConfig, ServerConfig};
use anti_persistence::prelude::*;
use block_store::temp_path;
use dict_server::protocol::{decode_response, encode_request, read_frame, Frame};
use dict_server::{
    ChaosProxy, Client, ClientConfig, NetFault, NetFaultPlan, Request, Response, Server,
    ServerOptions,
};

const SEED: u64 = 0xC4A05;
const BLOCK: usize = 512;
/// Keys touched by each cell's script (two passes over `0..KEYS`).
const KEYS: u64 = 40;

fn smoke() -> bool {
    std::env::var("CHAOS_SMOKE").is_ok()
}

fn config() -> DictConfig {
    DictConfig {
        backend: Backend::HiPma,
        seed: SEED,
        shards: 4,
        ..DictConfig::default()
    }
}

fn open(path: &std::path::Path) -> PersistentDict {
    Dict::builder()
        .backend(Backend::HiPma)
        .seed(SEED)
        .build_persistent_with(path, StoreOptions::new(BLOCK).no_sync())
        .unwrap()
}

fn drop_paths(data: &std::path::Path, journal: &std::path::Path) {
    let _ = std::fs::remove_file(data);
    let _ = std::fs::remove_file(journal);
}

/// A client armed for chaos: HELLO-bound identity, short deadline, a
/// count-based retry budget. Connecting itself races the armed fault
/// (HELLO is frame 0), so the helper retries the connect a few times —
/// one-shot faults burn their frame index on the first attempt.
fn chaos_client(addr: SocketAddr, id: u64) -> Option<Client> {
    let cfg = ClientConfig {
        client_id: id,
        read_timeout: Duration::from_millis(150),
        retry_budget: 5,
        backoff: Duration::from_millis(5),
        ..ClientConfig::default()
    };
    for _ in 0..3 {
        if let Ok(c) = Client::connect_with(addr, cfg) {
            return Some(c);
        }
    }
    None
}

/// The value pass A writes to key `k`.
fn pass_a_value(k: u64) -> u64 {
    1_000 + k
}

/// Pass B's op on key `k`: delete every third key, overwrite the rest.
fn pass_b(k: u64) -> Request {
    if k.is_multiple_of(3) {
        Request::Del { key: k }
    } else {
        Request::Put {
            key: k,
            value: 2_000 + k,
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Outcome {
    Acked,
    Failed,
    /// Never attempted: a previous op exhausted its budget and the script
    /// stopped (the supervised-client give-up).
    Skipped,
}

/// What `op` leaves behind at its key when applied.
fn apply(op: &Request) -> Option<u64> {
    match *op {
        Request::Put { value, .. } => Some(value),
        Request::Del { .. } => None,
        _ => unreachable!("script ops are writes"),
    }
}

/// The exactly-once candidate set for one key, given the outcomes of its
/// two script ops: acked ops collapse the set (definitely applied exactly
/// once), failed ops fork it (whole-or-absent), skipped ops leave it.
fn candidates(k: u64, a: Outcome, b: Outcome) -> Vec<Option<u64>> {
    let mut set: Vec<Option<u64>> = vec![None];
    for (op, out) in [
        (
            Request::Put {
                key: k,
                value: pass_a_value(k),
            },
            a,
        ),
        (pass_b(k), b),
    ] {
        match out {
            Outcome::Acked => set = vec![apply(&op)],
            Outcome::Failed => {
                let forked = apply(&op);
                if !set.contains(&forked) {
                    set.push(forked);
                }
            }
            Outcome::Skipped => {}
        }
    }
    set
}

/// One chaos cell: `fault` armed on one direction. Returns
/// `(acked, failed)` write counts for the battery-wide tally.
fn run_cell(name: &str, fault: NetFault, client_to_server: bool) -> (usize, usize) {
    let path = temp_path(&format!("net-chaos-{name}"));
    let dict = open(&path);
    let (data, journal) = (
        dict.store().path().to_path_buf(),
        dict.store().journal_path().to_path_buf(),
    );
    let mut server = Server::spawn(
        "127.0.0.1:0",
        ServerOptions {
            config: config(),
            persist: Some(dict),
        },
    )
    .expect("bind loopback");

    let plan = NetFaultPlan::new(vec![fault]);
    let (c2s, s2c) = if client_to_server {
        (plan.clone(), NetFaultPlan::none())
    } else {
        (NetFaultPlan::none(), plan.clone())
    };
    let mut proxy = ChaosProxy::spawn(server.addr(), c2s, s2c).expect("proxy spawns");

    // The chaos phase: two write passes over the keyspace, each op
    // retried under its budget. The script stops at the first exhausted
    // op (a supervised client gives up rather than queueing blind).
    let mut a = vec![Outcome::Skipped; KEYS as usize];
    let mut b = vec![Outcome::Skipped; KEYS as usize];
    'chaos: {
        let Some(mut c) = chaos_client(proxy.addr(), 0xC11E47) else {
            break 'chaos; // connect lost the race with a sticky fault
        };
        for k in 0..KEYS {
            a[k as usize] = match c.put(k, pass_a_value(k)) {
                Ok(()) => Outcome::Acked,
                Err(_) => Outcome::Failed,
            };
            if a[k as usize] == Outcome::Failed {
                break 'chaos;
            }
            // Interleaved reads keep response frames flowing on the s2c
            // direction; their answers are checked at readback instead.
            if k % 5 == 0 && c.get(k).is_err() {
                break 'chaos;
            }
        }
        for k in 0..KEYS {
            b[k as usize] = match c.roundtrip(&pass_b(k)) {
                Ok(Response::Done) => Outcome::Acked,
                Ok(other) => panic!("{name}: write acked {other:?}"),
                Err(_) => Outcome::Failed,
            };
            if b[k as usize] == Outcome::Failed {
                break 'chaos;
            }
        }
    }
    assert!(
        plan.frames_seen() > 0,
        "{name}: the chaos direction relayed no frames"
    );
    proxy.shutdown();
    // A delayed frame can still be in flight between the relay's EOF
    // flush and the server's epoch engine; let it land before snapshotting.
    std::thread::sleep(Duration::from_millis(100));

    // Readback over a clean direct connection: every key must hold one of
    // its exactly-once candidates.
    let mut direct = Client::connect(server.addr()).expect("direct connect");
    let mut observed = BTreeMap::new();
    let mut acked = 0usize;
    let mut failed = 0usize;
    for k in 0..KEYS {
        let got = direct.get(k).expect("direct get");
        let set = candidates(k, a[k as usize], b[k as usize]);
        assert!(
            set.contains(&got),
            "{name}: key {k} holds {got:?}, outside its exactly-once \
             candidate set {set:?}"
        );
        if let Some(v) = got {
            observed.insert(k, v);
        }
        for out in [a[k as usize], b[k as usize]] {
            match out {
                Outcome::Acked => acked += 1,
                Outcome::Failed => failed += 1,
                Outcome::Skipped => {}
            }
        }
    }

    // Byte-identity: the post-chaos FLUSH image equals a fault-free
    // single-threaded rebuild of the observed contents.
    let generation = direct.flush_store().expect("post-chaos flush");
    assert!(generation > 0);
    server.shutdown();
    drop(server);
    let served_bytes = std::fs::read(&data).expect("read served image");

    let ref_path = temp_path(&format!("net-chaos-ref-{name}"));
    let mut reference = open(&ref_path);
    for (&k, &v) in &observed {
        reference.insert(k, v);
    }
    reference.flush().expect("reference flush");
    let (ref_data, ref_journal) = (
        reference.store().path().to_path_buf(),
        reference.store().journal_path().to_path_buf(),
    );
    drop(reference);
    let reference_bytes = std::fs::read(&ref_data).expect("read reference image");
    assert_eq!(
        served_bytes, reference_bytes,
        "{name}: chaos leaked into the at-rest layout"
    );

    drop_paths(&data, &journal);
    drop_paths(&ref_data, &ref_journal);
    (acked, failed)
}

/// The fault matrix: every kind, at a spread of frame indexes. Smoke mode
/// keeps one site per kind.
fn fault_cells() -> Vec<(String, NetFault)> {
    let sites: &[u64] = if smoke() { &[6] } else { &[1, 6, 33] };
    let mut cells = Vec::new();
    for &at in sites {
        cells.push((format!("drop-{at}"), NetFault::Drop { at }));
        cells.push((format!("dup-{at}"), NetFault::Duplicate { at }));
        cells.push((
            format!("trunc-prefix-{at}"),
            NetFault::Truncate { at, bytes: 2 },
        ));
        cells.push((
            format!("trunc-envelope-{at}"),
            NetFault::Truncate { at, bytes: 9 },
        ));
        cells.push((
            format!("trunc-body-{at}"),
            NetFault::Truncate { at, bytes: 14 },
        ));
        cells.push((format!("delay-{at}"), NetFault::Delay { at, hold: 3 }));
        cells.push((format!("reset-{at}"), NetFault::Reset { at }));
        cells.push((format!("stall-{at}"), NetFault::Stall { at }));
    }
    cells.push((
        "bitflip".into(),
        NetFault::BitFlip {
            seed: 0xB17,
            one_in: 9,
        },
    ));
    if !smoke() {
        cells.push((
            "bitflip-dense".into(),
            NetFault::BitFlip {
                seed: 0x5EED,
                one_in: 4,
            },
        ));
    }
    cells
}

/// The main soak: every fault kind × injection site × both directions,
/// each cell checked against the exactly-once oracle and the byte-identity
/// invariant.
#[test]
fn every_wire_fault_cell_preserves_exactly_once() {
    let mut acked = 0usize;
    let mut failed = 0usize;
    for (name, fault) in fault_cells() {
        for (dir, c2s) in [("c2s", true), ("s2c", false)] {
            let (a, f) = run_cell(&format!("{name}-{dir}"), fault, c2s);
            acked += a;
            failed += f;
        }
    }
    // The battery must exercise both arms of the oracle: retries converge
    // through one-shot faults (acked), and sticky stalls exhaust budgets
    // (failed) — a sweep where either never happens tests nothing.
    assert!(acked > 0, "no write survived chaos anywhere");
    assert!(failed > 0, "no cell exhausted a retry budget");
}

/// Raw-frame helpers for the token-level batteries (the `Client` would
/// draw fresh tokens, which is exactly what these tests must not do).
fn send_raw(s: &mut TcpStream, token: u64, req: &Request) {
    let enveloped = encode_request(token, req);
    let mut out = (enveloped.len() as u32).to_be_bytes().to_vec();
    out.extend_from_slice(&enveloped);
    s.write_all(&out).expect("write frame");
}

fn read_raw(s: &mut TcpStream) -> (u64, Response) {
    let mut reader = std::io::BufReader::new(s.try_clone().expect("clone"));
    match read_frame(&mut reader).expect("read frame") {
        Frame::Body(body) => decode_response(&body).expect("decode response"),
        other => panic!("server answered {other:?} instead of a frame"),
    }
}

fn roundtrip_raw(s: &mut TcpStream, token: u64, req: &Request) -> Response {
    send_raw(s, token, req);
    let (got, resp) = read_raw(s);
    assert_eq!(got, token, "response correlates with its request");
    resp
}

/// A retried FLUSH replays its committed generation instead of committing
/// a second time; a *new* token commits fresh.
#[test]
fn retried_flush_replays_the_same_generation() {
    let path = temp_path("net-chaos-flush-replay");
    let dict = open(&path);
    let (data, journal) = (
        dict.store().path().to_path_buf(),
        dict.store().journal_path().to_path_buf(),
    );
    let mut server = Server::spawn(
        "127.0.0.1:0",
        ServerOptions {
            config: config(),
            persist: Some(dict),
        },
    )
    .expect("bind loopback");
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");

    assert_eq!(
        roundtrip_raw(&mut s, 1, &Request::Hello { client: 7 }),
        Response::Done
    );
    assert_eq!(
        roundtrip_raw(&mut s, 2, &Request::Put { key: 1, value: 10 }),
        Response::Done
    );
    let g1 = match roundtrip_raw(&mut s, 3, &Request::Flush) {
        Response::Generation(g) => g,
        other => panic!("flush answered {other:?}"),
    };
    // The retry (same token) replays; the dedup window must not commit.
    assert_eq!(
        roundtrip_raw(&mut s, 3, &Request::Flush),
        Response::Generation(g1),
        "a retried FLUSH re-committed instead of replaying"
    );
    // Even after the contents change, the retained response — not a fresh
    // commit — answers the old token.
    assert_eq!(
        roundtrip_raw(&mut s, 4, &Request::Put { key: 2, value: 20 }),
        Response::Done
    );
    assert_eq!(
        roundtrip_raw(&mut s, 3, &Request::Flush),
        Response::Generation(g1),
        "a retried FLUSH after new writes re-committed instead of replaying"
    );
    // A fresh token commits the new contents under a fresh generation.
    let g2 = match roundtrip_raw(&mut s, 5, &Request::Flush) {
        Response::Generation(g) => g,
        other => panic!("second flush answered {other:?}"),
    };
    assert!(g2 > g1, "a fresh FLUSH token did not commit ({g1} → {g2})");
    server.shutdown();
    drop(server);
    drop_paths(&data, &journal);
}

/// A duplicated PUT arriving after a DEL of the same key must not
/// resurrect the value: the dedup window suppresses the re-application.
#[test]
fn retried_put_does_not_resurrect_across_a_del() {
    let mut server = Server::spawn(
        "127.0.0.1:0",
        ServerOptions {
            config: config(),
            persist: None,
        },
    )
    .expect("bind loopback");
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");

    assert_eq!(
        roundtrip_raw(&mut s, 1, &Request::Hello { client: 9 }),
        Response::Done
    );
    assert_eq!(
        roundtrip_raw(&mut s, 2, &Request::Put { key: 5, value: 55 }),
        Response::Done
    );
    assert_eq!(
        roundtrip_raw(&mut s, 3, &Request::Del { key: 5 }),
        Response::Done
    );
    // The network replays the PUT (same client, same token): suppressed.
    assert_eq!(
        roundtrip_raw(&mut s, 2, &Request::Put { key: 5, value: 55 }),
        Response::Done,
        "the replayed PUT should get its retained ack"
    );
    assert_eq!(
        roundtrip_raw(&mut s, 4, &Request::Get { key: 5 }),
        Response::NotFound,
        "a replayed PUT resurrected a deleted key"
    );
    server.shutdown();
}

/// Pipelined responses stay arrival-ordered even when the proxy
/// duplicates frames on both directions: the client skips stale
/// duplicates and every answer matches the oracle in order.
#[test]
fn pipelined_responses_stay_arrival_ordered_under_duplication() {
    let mut server = Server::spawn(
        "127.0.0.1:0",
        ServerOptions {
            config: config(),
            persist: None,
        },
    )
    .expect("bind loopback");
    // Frame 0 on c2s is the HELLO; duplicate ops and responses mid-stream.
    let c2s = NetFaultPlan::new(vec![
        NetFault::Duplicate { at: 3 },
        NetFault::Duplicate { at: 17 },
    ]);
    let s2c = NetFaultPlan::new(vec![
        NetFault::Duplicate { at: 5 },
        NetFault::Duplicate { at: 23 },
    ]);
    let mut proxy = ChaosProxy::spawn(server.addr(), c2s, s2c).expect("proxy spawns");
    let mut c = Client::connect_with(
        proxy.addr(),
        ClientConfig {
            client_id: 0xD0B1E,
            read_timeout: Duration::from_secs(5),
            ..ClientConfig::default()
        },
    )
    .expect("connect via proxy");

    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    let mut state = 0x0D0Au64;
    let lcg = |state: &mut u64| {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 11
    };
    let mut script = Vec::new();
    for i in 0..400u64 {
        let k = lcg(&mut state) % 64;
        match lcg(&mut state) % 4 {
            0 => script.push(Request::Get { key: k }),
            1 => script.push(Request::Del { key: k }),
            _ => script.push(Request::Put { key: k, value: i }),
        }
    }
    for batch in script.chunks(50) {
        for op in batch {
            c.send(op).expect("send");
        }
        c.flush().expect("flush");
        for op in batch {
            let got = c.recv().expect("recv");
            let want = match op {
                Request::Get { key } => match oracle.get(key) {
                    Some(&v) => Response::Value(v),
                    None => Response::NotFound,
                },
                Request::Put { key, value } => {
                    oracle.insert(*key, *value);
                    Response::Done
                }
                Request::Del { key } => {
                    oracle.remove(key);
                    Response::Done
                }
                _ => unreachable!(),
            };
            assert_eq!(got, want, "pipelined answer out of order for {op:?}");
        }
    }
    proxy.shutdown();
    server.shutdown();
}

/// The idle reaper closes a silent connection after the idle budget, while
/// a connection that PINGs inside the window stays alive indefinitely.
#[test]
fn idle_connections_are_reaped_but_ping_keeps_them_alive() {
    let mut cfg = config();
    cfg.server = ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..cfg.server
    };
    let mut server = Server::spawn(
        "127.0.0.1:0",
        ServerOptions {
            config: cfg,
            persist: None,
        },
    )
    .expect("bind loopback");

    // A silent connection: the reaper must close it (EOF), not hang.
    let mut silent = TcpStream::connect(server.addr()).expect("connect");
    silent
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut buf = [0u8; 1];
    match silent.read(&mut buf) {
        Ok(0) => {} // reaped: clean close
        Ok(n) => panic!("silent connection received {n} bytes"),
        Err(e) => panic!("silent connection saw {e} instead of EOF"),
    }

    // A chatty connection: PINGs spaced inside the idle window hold it
    // open across many multiples of the timeout.
    let mut chatty = Client::connect(server.addr()).expect("connect");
    for _ in 0..10 {
        std::thread::sleep(Duration::from_millis(100));
        chatty.ping().expect("ping keeps the connection alive");
    }
    server.shutdown();
}

/// A tiny in-flight bound still answers a deep pipelined burst completely
/// and in order — the reader blocks at the bound (TCP backpressure) but
/// the engine never does, and nothing is lost or reordered.
#[test]
fn bounded_inflight_answers_deep_pipelines_in_order() {
    let mut cfg = config();
    cfg.server = ServerConfig {
        inflight_bound: 2,
        ..cfg.server
    };
    let mut server = Server::spawn(
        "127.0.0.1:0",
        ServerOptions {
            config: cfg,
            persist: None,
        },
    )
    .expect("bind loopback");
    let mut c = Client::connect(server.addr()).expect("connect");
    let n: u64 = if smoke() { 200 } else { 600 };
    for i in 0..n {
        c.send(&Request::Put {
            key: i % 32,
            value: i,
        })
        .expect("send");
    }
    c.flush().expect("flush");
    for i in 0..n {
        assert_eq!(
            c.recv().expect("recv"),
            Response::Done,
            "pipelined op {i} lost or reordered under a tight bound"
        );
    }
    // The final state is the last write per key.
    for k in 0..32u64 {
        let want = (0..n).rev().find(|i| i % 32 == k);
        assert_eq!(c.get(k).expect("get"), want, "key {k}");
    }
    server.shutdown();
}
