//! Seeded-determinism regression tests.
//!
//! The history-independence tests in `tests/history_independence.rs`
//! silently assume that a structure's layout is a pure function of
//! `(contents, seed)` — the paper's "secret coins" become reproducible
//! streams under a fixed seed. These tests make that assumption explicit:
//! replaying the same operations with the same seed must produce
//! *bit-identical* layouts, while a different seed must (overwhelmingly
//! likely) produce a different one.

use anti_persistence::prelude::*;
use workloads::{mixed, replay, Op};

/// A moderately adversarial build: mixed inserts/deletes, then a burst of
/// overwrites.
fn build_cob(seed: u64) -> CobBTree<u64, u64> {
    let mut t: CobBTree<u64, u64> = CobBTree::new(seed);
    replay(&mixed(3_000, 500, 0.6, 42), &mut t);
    for k in 0..100u64 {
        t.insert(k, k + 1);
    }
    t
}

fn build_skiplist(seed: u64) -> ExternalSkipList<u64, u64> {
    let mut s: ExternalSkipList<u64, u64> = ExternalSkipList::history_independent(16, 0.5, seed);
    replay(&mixed(3_000, 500, 0.6, 42), &mut s);
    s
}

fn build_hi_pma(seed: u64) -> HiPma<u64> {
    let mut p: HiPma<u64> = HiPma::new(seed);
    let trace = mixed(2_000, 400, 0.7, 42);
    // Convert the keyed trace into rank operations against a sorted shadow.
    let mut keys: Vec<u64> = Vec::new();
    for op in &trace.ops {
        match *op {
            Op::Insert(k, _) => {
                if let Err(rank) = keys.binary_search(&k) {
                    keys.insert(rank, k);
                    p.insert_at(rank, k).expect("insert in range");
                }
            }
            Op::Delete(k) => {
                if let Ok(rank) = keys.binary_search(&k) {
                    keys.remove(rank);
                    p.delete_at(rank).expect("delete in range");
                }
            }
            _ => {}
        }
    }
    p
}

#[test]
fn hi_pma_layout_is_a_function_of_seed_and_contents() {
    let a = build_hi_pma(0xC0FFEE);
    let b = build_hi_pma(0xC0FFEE);
    assert_eq!(a.to_vec(), b.to_vec(), "contents must agree");
    assert_eq!(a.n_hat(), b.n_hat(), "capacity parameter must be identical");
    assert_eq!(a.total_slots(), b.total_slots());
    assert_eq!(
        a.occupancy(),
        b.occupancy(),
        "slot bitmap must be bit-identical"
    );
}

#[test]
fn hi_pma_layout_differs_across_seeds() {
    let a = build_hi_pma(1);
    let b = build_hi_pma(2);
    assert_eq!(a.to_vec(), b.to_vec(), "contents must agree across seeds");
    // With independent secret coins the probability of identical occupancy
    // bitmaps at this size is negligible.
    assert_ne!(
        a.occupancy(),
        b.occupancy(),
        "different seeds should yield different layouts"
    );
}

#[test]
fn cob_btree_layout_is_a_function_of_seed_and_contents() {
    let a = build_cob(0xDEADBEEF);
    let b = build_cob(0xDEADBEEF);
    assert_eq!(a.to_sorted_vec(), b.to_sorted_vec(), "contents must agree");
    assert_eq!(a.total_slots(), b.total_slots());
    assert_eq!(
        a.occupancy(),
        b.occupancy(),
        "slot bitmap must be bit-identical"
    );
    assert_eq!(a.pma().n_hat(), b.pma().n_hat());
}

#[test]
fn cob_btree_layout_differs_across_seeds() {
    let a = build_cob(7);
    let b = build_cob(8);
    assert_eq!(a.to_sorted_vec(), b.to_sorted_vec());
    assert_ne!(
        a.occupancy(),
        b.occupancy(),
        "different seeds should yield different layouts"
    );
}

#[test]
fn skiplist_layout_is_a_function_of_seed_and_contents() {
    let a = build_skiplist(0xFEED);
    let b = build_skiplist(0xFEED);
    assert_eq!(a.to_sorted_vec(), b.to_sorted_vec(), "contents must agree");
    assert_eq!(a.height(), b.height(), "tower heights must be identical");
    assert_eq!(a.leaf_node_count(), b.leaf_node_count());
    assert_eq!(
        a.leaf_array_lengths(),
        b.leaf_array_lengths(),
        "leaf arrays must be bit-identical"
    );
    assert_eq!(a.space_records(), b.space_records());
}

#[test]
fn skiplist_layout_differs_across_seeds() {
    let a = build_skiplist(100);
    let b = build_skiplist(200);
    assert_eq!(a.to_sorted_vec(), b.to_sorted_vec());
    // Pivot choices and leaf padding are seed-dependent; the full leaf-array
    // length vector colliding across seeds is overwhelmingly unlikely.
    assert_ne!(
        a.leaf_array_lengths(),
        b.leaf_array_lengths(),
        "different seeds should yield different leaf layouts"
    );
}

// ---------------------------------------------------------------------
// Engine-independence pins: the storage engine is an implementation detail
// of the representation function — the occupancy bitmap for a given
// (operations, seed) must never change when the engine is rewritten. The
// fingerprints below were captured from the original Vec<Option<T>> slot
// engine (pre flat-storage rework) and pin the flat bitmap engine, and any
// future engine, to bit-identical layouts across both the incremental and
// bulk_load build paths.
// ---------------------------------------------------------------------

/// FNV-1a over the occupancy bits plus trailing layout parameters.
fn layout_fingerprint(bits: &[bool], extra: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut step = |b: u64| {
        h ^= b;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for &b in bits {
        step(b as u64);
    }
    for &e in extra {
        step(e);
    }
    h
}

#[test]
fn hi_pma_layouts_are_bit_identical_to_the_reference_engine() {
    // Sequential appends.
    let mut p: HiPma<u64> = HiPma::new(0xFEED5EED);
    for i in 0..10_000 {
        p.insert_at(i, i as u64).unwrap();
    }
    assert_eq!(
        layout_fingerprint(&p.occupancy(), &[p.n_hat() as u64, p.total_slots() as u64]),
        0x2A55_19A0_F05F_C4DA,
        "sequential-append layout diverged from the reference engine"
    );

    // Deterministic mixed rank churn.
    let mut p: HiPma<u64> = HiPma::new(0xABCD);
    for i in 0u64..8_000 {
        let len = p.len() as u64;
        if i % 3 == 2 && len > 0 {
            p.delete_at(((i * 104_729) % len) as usize).unwrap();
        } else {
            p.insert_at(((i * 7_919) % (len + 1)) as usize, i).unwrap();
        }
    }
    assert_eq!(
        layout_fingerprint(&p.occupancy(), &[p.n_hat() as u64, p.total_slots() as u64]),
        0xD9BA_3261_B875_16C3,
        "mixed-churn layout diverged from the reference engine"
    );
}

#[test]
fn hi_pma_bulk_load_layout_is_bit_identical_to_the_reference_engine() {
    let mut p: HiPma<u64> = HiPma::new(1);
    p.bulk_load((0..5_000u64).map(|k| k * 3), 0xB01D);
    assert_eq!(
        layout_fingerprint(&p.occupancy(), &[p.n_hat() as u64, p.total_slots() as u64]),
        0x6439_4AD5_3978_65E4,
        "bulk_load layout diverged from the reference engine"
    );
}

#[test]
fn classic_pma_layout_is_bit_identical_to_the_reference_engine() {
    let mut c: ClassicPma<u64> = ClassicPma::new();
    for i in 0..6_000 {
        c.insert_at(i, i as u64).unwrap();
    }
    for i in 0..2_000u64 {
        c.insert_at(0, i).unwrap();
    }
    assert_eq!(
        layout_fingerprint(&c.occupancy(), &[c.total_slots() as u64]),
        0x29F1_9C9F_FDDD_7421,
        "classic-PMA layout diverged from the reference engine"
    );
}

// ---------------------------------------------------------------------
// Group-commit determinism: apply_batch must be *bit-identical* to per-op
// application — the batch replay draws the same coins in the same order and
// defers only the data movement, so the occupancy bitmap of every
// slot-array backend must not depend on how the stream was chunked into
// batches.
// ---------------------------------------------------------------------

/// A mixed keyed op stream: `(is_put, key, value)`.
fn keyed_stream(ops: usize, mode: &str, salt: u64) -> Vec<(bool, u64, u64)> {
    let mut state = salt | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 11
    };
    (0..ops as u64)
        .map(|i| {
            let r = next();
            let key = match mode {
                "sequential" => i / 2, // revisits keys: overwrites + removes hit
                "zipf" => {
                    let u = (r % (1 << 20)) as f64 / (1u64 << 20) as f64;
                    ((u * u) * 4_000.0) as u64
                }
                _ => r % 30_000,
            };
            (next() % 4 != 0, key, i)
        })
        .collect()
}

#[test]
fn batched_apply_is_bit_identical_across_batch_sizes() {
    use hi_common::batch::BatchOp;
    for backend in [Backend::HiPma, Backend::ClassicPma, Backend::CobBTree] {
        for mode in ["uniform", "sequential", "zipf"] {
            let stream = keyed_stream(6_000, mode, 0xBEE5);
            // Reference: element-at-a-time application.
            let mut per_op: DynDict<u64, u64> = Dict::builder().backend(backend).seed(42).build();
            for &(is_put, k, v) in &stream {
                if is_put {
                    per_op.insert(k, v);
                } else {
                    per_op.remove(&k);
                }
            }
            let reference = per_op.occupancy().expect("slot-array backend");
            for chunk in [1usize, 16, 256, 4_096] {
                let mut batched: DynDict<u64, u64> =
                    Dict::builder().backend(backend).seed(42).build();
                for part in stream.chunks(chunk) {
                    let ops: Vec<BatchOp<u64, u64>> = part
                        .iter()
                        .map(|&(is_put, k, v)| {
                            if is_put {
                                BatchOp::Put(k, v)
                            } else {
                                BatchOp::Remove(k)
                            }
                        })
                        .collect();
                    batched.apply_batch(ops);
                }
                assert_eq!(
                    per_op.to_sorted_vec(),
                    batched.to_sorted_vec(),
                    "{backend}/{mode} chunk {chunk}: contents"
                );
                assert_eq!(
                    reference,
                    batched.occupancy().expect("slot-array backend"),
                    "{backend}/{mode} chunk {chunk}: occupancy must be bit-identical"
                );
                batched.check_invariants();
            }
        }
    }
}

#[test]
fn sharded_mixed_batches_are_bit_identical_across_splits() {
    use hi_common::batch::BatchOp;
    // Mixed put/remove streams through multi_apply, at several shard
    // counts and several chunkings (inline and threaded): every split must
    // leave bit-identical per-shard layouts — the batched twin of
    // `sharded_layouts_are_bit_identical_across_work_splits`.
    let stream = keyed_stream(5_000, "uniform", 0x51AB);
    for shards in [2usize, 4, 8] {
        let mut per_op: ShardedDict<DynDict<u64, u64>> = Dict::builder()
            .backend(Backend::HiPma)
            .seed(0xD15C)
            .shards(shards)
            .build_sharded();
        for &(is_put, k, v) in &stream {
            if is_put {
                per_op.insert(k, v);
            } else {
                per_op.remove(&k);
            }
        }
        let reference = shard_layouts(&per_op);
        for (chunk, threshold) in [(97usize, 0usize), (1_024, usize::MAX), (5_000, 0)] {
            let mut batched: ShardedDict<DynDict<u64, u64>> = Dict::builder()
                .backend(Backend::HiPma)
                .seed(0xD15C)
                .shards(shards)
                .build_sharded();
            batched.set_parallel_threshold(threshold);
            for part in stream.chunks(chunk) {
                let ops: Vec<BatchOp<u64, u64>> = part
                    .iter()
                    .map(|&(is_put, k, v)| {
                        if is_put {
                            BatchOp::Put(k, v)
                        } else {
                            BatchOp::Remove(k)
                        }
                    })
                    .collect();
                batched.multi_apply(ops);
            }
            assert_eq!(
                per_op.to_sorted_vec(),
                batched.to_sorted_vec(),
                "S={shards} chunk {chunk}: contents"
            );
            assert_eq!(
                reference,
                shard_layouts(&batched),
                "S={shards} chunk {chunk}: per-shard layouts must be bit-identical"
            );
        }
    }
}

// ---------------------------------------------------------------------
// bulk_load determinism: the layout after a bulk load must be a pure
// function of (contents, bulk seed) — independent of the order the pairs
// arrive in, of the structure's construction seed, and of anything it held
// before the load.
// ---------------------------------------------------------------------

/// The same 2 000 pairs in three different arrival orders.
fn bulk_inputs() -> [Vec<(u64, u64)>; 3] {
    let ascending: Vec<(u64, u64)> = (0..2_000u64).map(|k| (k * 5, k)).collect();
    let mut descending = ascending.clone();
    descending.reverse();
    // Interleaved halves: evens first, then odds.
    let mut interleaved: Vec<(u64, u64)> = ascending.iter().copied().step_by(2).collect();
    interleaved.extend(ascending.iter().copied().skip(1).step_by(2));
    [ascending, descending, interleaved]
}

#[test]
fn cob_btree_bulk_load_is_order_independent_given_the_seed() {
    let bulk_seed = 0xB01D;
    let mut layouts = Vec::new();
    for (i, input) in bulk_inputs().into_iter().enumerate() {
        // Different construction seeds and different pre-existing contents:
        // neither may leak into the post-load layout.
        let mut t: CobBTree<u64, u64> = CobBTree::new(1_000 + i as u64);
        for k in 0..50 * i as u64 {
            t.insert(k, k);
        }
        t.bulk_load(input, bulk_seed);
        layouts.push((t.to_sorted_vec(), t.pma().n_hat(), t.occupancy()));
    }
    assert_eq!(
        layouts[0], layouts[1],
        "descending load must be bit-identical"
    );
    assert_eq!(
        layouts[0], layouts[2],
        "interleaved load must be bit-identical"
    );

    let mut other: CobBTree<u64, u64> = CobBTree::new(1);
    other.bulk_load(bulk_inputs()[0].clone(), bulk_seed + 1);
    assert_eq!(other.to_sorted_vec(), layouts[0].0);
    assert_ne!(
        other.occupancy(),
        layouts[0].2,
        "a different bulk seed should yield a different layout"
    );
}

#[test]
fn skiplist_bulk_load_is_order_independent_given_the_seed() {
    let bulk_seed = 0x51C1;
    let mut layouts = Vec::new();
    for (i, input) in bulk_inputs().into_iter().enumerate() {
        let mut s: ExternalSkipList<u64, u64> =
            ExternalSkipList::history_independent(16, 0.5, 2_000 + i as u64);
        for k in 0..40 * i as u64 {
            s.insert(k, k);
        }
        s.bulk_load(input, bulk_seed);
        layouts.push((
            s.to_sorted_vec(),
            s.height(),
            s.leaf_node_count(),
            s.leaf_array_lengths(),
            s.space_records(),
        ));
    }
    assert_eq!(
        layouts[0], layouts[1],
        "descending load must be bit-identical"
    );
    assert_eq!(
        layouts[0], layouts[2],
        "interleaved load must be bit-identical"
    );
}

#[test]
fn hi_pma_bulk_load_matches_across_prior_histories() {
    let bulk_seed = 0x99AA;
    let items: Vec<u64> = (0..1_500u64).collect();
    let mut fresh: HiPma<u64> = HiPma::new(7);
    fresh.bulk_load(items.clone(), bulk_seed);
    let mut churned: HiPma<u64> = HiPma::new(8);
    for i in 0..400 {
        churned.insert(i, i as u64).unwrap();
    }
    for _ in 0..200 {
        churned.delete(0).unwrap();
    }
    churned.bulk_load(items, bulk_seed);
    assert_eq!(fresh.to_vec(), churned.to_vec());
    assert_eq!(fresh.n_hat(), churned.n_hat());
    assert_eq!(
        fresh.occupancy(),
        churned.occupancy(),
        "bulk_load layout must not depend on the structure's prior history"
    );
}

// ---------------------------------------------------------------------
// Sharded determinism: a ShardedDict's layout must be a pure function of
// (contents, seed, S) — the same operation stream must produce bit-identical
// per-shard layouts no matter how the caller split it into batches and no
// matter whether the batches ran inline or on scoped worker threads. This
// holds by construction (grouping a stream by shard preserves each shard's
// subsequence, and shards share no randomness), and these tests pin it.
// ---------------------------------------------------------------------

/// Every shard's occupancy bitmap, in shard order — the sharded layout
/// observable (`None` never occurs for the slot-array backends used here).
fn shard_layouts(d: &ShardedDict<DynDict<u64, u64>>) -> Vec<Vec<bool>> {
    d.shards()
        .iter()
        .map(|s| s.occupancy().expect("slot-array backend"))
        .collect()
}

#[test]
fn sharded_layouts_are_bit_identical_across_work_splits() {
    // Same stream of 4 000 operations, same root seed, four execution
    // plans: per-op inserts, small threaded batches, large sequential
    // batches, one giant threaded batch. Across ≥ 3 shard counts.
    let stream: Vec<(u64, u64)> = (0..4_000u64)
        .map(|i| (i.wrapping_mul(2_654_435_761) % 60_000, i))
        .collect();
    for shards in [2usize, 4, 8] {
        let build = |chunk: usize, threshold: usize| {
            let mut d: ShardedDict<DynDict<u64, u64>> = Dict::builder()
                .backend(Backend::HiPma)
                .seed(0x5A4D)
                .shards(shards)
                .build_sharded();
            d.set_parallel_threshold(threshold);
            for part in stream.chunks(chunk) {
                d.multi_put(part.to_vec());
            }
            d
        };
        let mut per_op: ShardedDict<DynDict<u64, u64>> = Dict::builder()
            .backend(Backend::HiPma)
            .seed(0x5A4D)
            .shards(shards)
            .build_sharded();
        for (k, v) in &stream {
            per_op.insert(*k, *v);
        }
        let reference = shard_layouts(&per_op);
        let threaded_small = build(173, 0);
        let sequential_large = build(1_024, usize::MAX);
        let threaded_whole = build(stream.len(), 0);
        for (label, d) in [
            ("threaded batches of 173", &threaded_small),
            ("sequential batches of 1024", &sequential_large),
            ("one threaded batch", &threaded_whole),
        ] {
            assert_eq!(
                d.to_sorted_vec(),
                per_op.to_sorted_vec(),
                "S={shards}, {label}: contents must agree"
            );
            assert_eq!(
                shard_layouts(d),
                reference,
                "S={shards}, {label}: per-shard layouts must be bit-identical"
            );
        }
    }
}

#[test]
fn sharded_bulk_load_layout_is_pinned_and_order_free() {
    // bulk_load is the strongest form: layout = f(contents, seed, S) with
    // *no* dependence on arrival order at all. Pin the S=4 fingerprint so
    // engine rewrites cannot silently change the sharded representation,
    // and check the parallel loader is bit-identical to the sequential one.
    let load = |input: Vec<(u64, u64)>, parallel: bool| {
        let mut d: ShardedDict<DynDict<u64, u64>> = Dict::builder()
            .backend(Backend::HiPma)
            .seed(0xC0DE)
            .shards(4)
            .build_sharded();
        d.insert(999_999, 1); // pre-existing state must not leak through
        if parallel {
            d.bulk_load_parallel(input, 0xB01D);
        } else {
            d.bulk_load(input, 0xB01D);
        }
        d
    };
    let ascending: Vec<(u64, u64)> = (0..3_000u64).map(|k| (k * 7, k)).collect();
    let mut shuffled = ascending.clone();
    shuffled.reverse();
    let a = load(ascending.clone(), false);
    let b = load(shuffled, true);
    assert_eq!(a.to_sorted_vec(), b.to_sorted_vec());
    assert_eq!(
        shard_layouts(&a),
        shard_layouts(&b),
        "parallel reversed load must be bit-identical to sequential ascending load"
    );

    let mut fingerprint_bits: Vec<bool> = Vec::new();
    for layout in shard_layouts(&a) {
        fingerprint_bits.extend(layout);
    }
    assert_eq!(
        layout_fingerprint(&fingerprint_bits, &[4]),
        0x9614_6F25_95D6_A4E3,
        "sharded bulk_load layout diverged from the pinned fingerprint"
    );
}

#[test]
fn dyn_dict_bulk_load_is_deterministic_per_backend() {
    for backend in Backend::ALL {
        let build = |input: Vec<(u64, u64)>| {
            let mut d: DynDict<u64, u64> = Dict::builder().backend(backend).seed(17).build();
            d.bulk_load(input, 0xD1CE);
            d
        };
        let [a_in, b_in, _] = bulk_inputs();
        let a = build(a_in);
        let b = build(b_in);
        assert_eq!(
            a.to_sorted_vec(),
            b.to_sorted_vec(),
            "{backend}: contents must be order-independent"
        );
    }
}
